"""Word pools for the synthetic corpora.

The paper's datasets come from FreeDB (CDs) and IMDB / Film-Dienst
(movies); neither is distributable, so the generators compose records
from these pools.  Pools are plain tuples — generators draw from them
with their own seeded :class:`random.Random` so corpora are fully
deterministic.
"""

from __future__ import annotations

FIRST_NAMES = (
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Christopher",
    "Nancy", "Daniel", "Lisa", "Matthew", "Betty", "Anthony", "Margaret",
    "Mark", "Sandra", "Donald", "Ashley", "Steven", "Kimberly", "Paul",
    "Emily", "Andrew", "Donna", "Joshua", "Michelle", "Kenneth", "Carol",
    "Kevin", "Amanda", "Brian", "Dorothy", "George", "Melissa", "Edward",
    "Deborah", "Ronald", "Stephanie", "Timothy", "Rebecca", "Jason", "Sharon",
    "Jeffrey", "Laura", "Ryan", "Cynthia", "Jacob", "Kathleen", "Gary",
    "Amy", "Nicholas", "Angela", "Eric", "Shirley", "Jonathan", "Anna",
    "Stephen", "Brenda", "Larry", "Pamela", "Justin", "Emma", "Scott",
    "Nicole", "Brandon", "Helen", "Benjamin", "Samantha", "Samuel",
    "Katherine", "Gregory", "Christine", "Frank", "Debra", "Alexander",
    "Rachel", "Raymond", "Carolyn", "Patrick", "Janet", "Jack", "Catherine",
    "Dennis", "Maria", "Jerry", "Heather",
)

LAST_NAMES = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
    "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
    "Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
    "Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
    "Kim", "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez",
    "Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
    "Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long",
    "Ross", "Foster", "Jimenez",
)

BAND_WORDS = (
    "Electric", "Midnight", "Crimson", "Velvet", "Silver", "Golden",
    "Broken", "Silent", "Burning", "Frozen", "Wild", "Lonely", "Neon",
    "Cosmic", "Savage", "Gentle", "Hollow", "Rising", "Falling", "Lost",
    "Wicked", "Sacred", "Thunder", "Shadow", "Echo", "Winter", "Summer",
    "Autumn", "Iron", "Glass", "Paper", "Stone", "River", "Ocean",
    "Mountain", "Desert", "Phantom", "Royal", "Rebel", "Gypsy",
)

BAND_NOUNS = (
    "Hearts", "Wolves", "Kings", "Queens", "Riders", "Dreamers", "Angels",
    "Ghosts", "Ravens", "Tigers", "Serpents", "Saints", "Sinners",
    "Strangers", "Pilots", "Poets", "Prophets", "Drifters", "Ramblers",
    "Outlaws", "Mirrors", "Engines", "Lanterns", "Arrows", "Embers",
    "Horizons", "Travelers", "Vagabonds", "Sparrows", "Foxes",
)

TITLE_WORDS = (
    "Love", "Night", "Day", "Heart", "Dream", "Fire", "Rain", "Moon",
    "Sun", "Star", "Road", "Home", "Time", "Life", "Soul", "Sky",
    "Light", "Dark", "Blue", "Red", "Black", "White", "Gold", "Wind",
    "Storm", "Dance", "Song", "Story", "Memory", "Promise", "Secret",
    "Whisper", "Shadow", "Echo", "Mirror", "River", "Ocean", "Mountain",
    "Valley", "City", "Street", "Train", "Highway", "Garden", "Island",
    "Winter", "Summer", "Spring", "Morning", "Evening", "Midnight",
    "Forever", "Yesterday", "Tomorrow", "Freedom", "Glory", "Wonder",
    "Silence", "Thunder", "Lightning", "Rainbow", "Horizon", "Journey",
    "Destiny", "Paradise", "Eternity", "Infinity", "Miracle", "Mystery",
)

TITLE_PATTERNS = (
    "{a} of {b}",
    "{a} and {b}",
    "{a} in the {b}",
    "The {a} of {b}",
    "{a} Without {b}",
    "Waiting for the {a}",
    "Beyond the {a}",
    "Under the {a}",
    "{a} {b}",
    "My {a}",
    "No More {a}",
    "Chasing the {a}",
    "Children of the {a}",
    "Return to {a}",
    "A {a} for {b}",
)

GENRES = (
    "Rock", "Pop", "Jazz", "Blues", "Classical", "Country", "Folk",
    "Electronic", "Hip-Hop", "Reggae", "Soul", "Funk", "Metal", "Punk",
    "Gospel", "Latin", "World", "Ambient", "Techno", "House",
)

CD_EXTRA_NOTES = (
    "Digitally remastered edition",
    "Includes bonus tracks",
    "Limited edition digipak",
    "Recorded live on tour",
    "Original soundtrack recording",
    "Special anniversary release",
    "Imported pressing",
    "Includes multimedia content",
    "Promotional copy",
    "Collector's edition",
)

MOVIE_GENRES_EN = (
    "Action", "Adventure", "Comedy", "Drama", "Thriller", "Horror",
    "Science Fiction", "Fantasy", "Romance", "Crime", "Mystery",
    "Western", "War", "Documentary", "Animation", "Musical", "Biography",
    "History", "Family", "Sport",
)

#: German renderings of MOVIE_GENRES_EN (index-aligned) — the Dataset 2
#: synonym problem: equal meaning, mostly dissimilar strings.
MOVIE_GENRES_DE = (
    "Actionfilm", "Abenteuer", "Komoedie", "Drama", "Thriller", "Horror",
    "Science-Fiction", "Fantasy", "Liebesfilm", "Krimi", "Mysteryfilm",
    "Western", "Kriegsfilm", "Dokumentarfilm", "Zeichentrick", "Musikfilm",
    "Filmbiografie", "Historienfilm", "Familienfilm", "Sportfilm",
)

MOVIE_TITLE_WORDS_DE = (
    "Liebe", "Nacht", "Tag", "Herz", "Traum", "Feuer", "Regen", "Mond",
    "Sonne", "Stern", "Strasse", "Heimat", "Zeit", "Leben", "Seele",
    "Himmel", "Licht", "Schatten", "Fluss", "Meer", "Berg", "Stadt",
    "Winter", "Sommer", "Morgen", "Mitternacht", "Freiheit", "Stille",
    "Donner", "Wunder", "Reise", "Schicksal", "Paradies", "Geheimnis",
)

MONTH_NAMES_EN = (
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
)
