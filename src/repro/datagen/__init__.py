"""datagen: synthetic equivalents of the paper's datasets.

FreeDB-like CD corpora (Datasets 1 and 3), the two-source movie corpus
(Dataset 2), the XML Dirty Data Generator, and the paper's running
example.  All generators are seeded and fully deterministic; generated
objects carry a ``gid`` attribute as the gold standard (attributes
never reach object descriptions).
"""

from .dirty import (
    DirtyConfig,
    DirtyDataGenerator,
    GOLD_ATTRIBUTE,
    gold_id,
    gold_pairs_from_elements,
)
from .freedb import (
    CD_XSD,
    CDCorpus,
    CDRecord,
    cd_schema,
    cd_to_element,
    freedb_corpus,
    freedb_large_corpus,
    generate_cds,
)
from .movies import (
    FILMDIENST_XSD,
    IMDB_XSD,
    MovieCorpus,
    MovieRecord,
    filmdienst_element,
    filmdienst_schema,
    generate_movies,
    imdb_element,
    imdb_schema,
    movie_corpus,
    movie_mapping,
)
from .paper_example import (
    PAPER_EXAMPLE_XML,
    PAPER_EXAMPLE_XSD,
    paper_example_document,
    paper_example_mapping,
    paper_example_schema,
)
from .synonyms import DEFAULT_SYNONYMS, SynonymTable
from .typos import corrupt, introduce_typo

__all__ = [
    "CD_XSD",
    "CDCorpus",
    "CDRecord",
    "DEFAULT_SYNONYMS",
    "DirtyConfig",
    "FILMDIENST_XSD",
    "IMDB_XSD",
    "DirtyDataGenerator",
    "GOLD_ATTRIBUTE",
    "MovieCorpus",
    "MovieRecord",
    "PAPER_EXAMPLE_XML",
    "PAPER_EXAMPLE_XSD",
    "SynonymTable",
    "cd_schema",
    "cd_to_element",
    "corrupt",
    "filmdienst_element",
    "filmdienst_schema",
    "freedb_corpus",
    "freedb_large_corpus",
    "generate_cds",
    "generate_movies",
    "gold_id",
    "gold_pairs_from_elements",
    "imdb_element",
    "imdb_schema",
    "introduce_typo",
    "movie_corpus",
    "movie_mapping",
    "paper_example_document",
    "paper_example_mapping",
    "paper_example_schema",
]
