"""The XML Dirty Data Generator.

Reimplementation of the tool the paper used to build Dataset 1
(http://www.informatik.hu-berlin.de/mac/dirtyxml/, no longer
distributed), with the same four parameters:

* ``duplicate_fraction`` — percentage of objects to duplicate,
* ``typo_rate`` — percentage of typographical errors,
* ``missing_rate`` — percentage of missing data,
* ``synonym_rate`` — percentage of synonymous (but contradictory) data.

Rates apply per text value (typos, synonyms) and per optional element
(missing data) on the duplicated copy.  Originals are never modified.
Duplicated elements carry the same ``gid`` attribute as their original,
which is the machine-readable gold standard (attributes never enter
object descriptions, so the marker cannot leak into similarity).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..xmlkit import Element
from .synonyms import DEFAULT_SYNONYMS, SynonymTable
from .typos import corrupt

#: Gold-standard attribute carried by generated objects.
GOLD_ATTRIBUTE = "gid"


@dataclass(frozen=True)
class DirtyConfig:
    """The four knobs of the dirty-data generator.

    Paper settings for Dataset 1: 100% duplicates, 20% typos, 10%
    missing data, 8% synonyms.
    """

    duplicate_fraction: float = 1.0
    typo_rate: float = 0.20
    missing_rate: float = 0.10
    synonym_rate: float = 0.08

    def __post_init__(self) -> None:
        for name in ("duplicate_fraction", "typo_rate", "missing_rate", "synonym_rate"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @classmethod
    def paper_dataset1(cls) -> "DirtyConfig":
        return cls(1.0, 0.20, 0.10, 0.08)


class DirtyDataGenerator:
    """Duplicates XML elements with controlled errors."""

    def __init__(
        self,
        config: DirtyConfig,
        seed: int,
        synonyms: SynonymTable = DEFAULT_SYNONYMS,
        optional_paths: frozenset[str] | None = None,
    ) -> None:
        self.config = config
        self.rng = random.Random(seed)
        self.synonyms = synonyms
        #: Relative paths (tag chains like "genre" or "tracks/title")
        #: eligible for missing-data removal.  None = any non-first
        #: child element is eligible.
        self.optional_paths = optional_paths

    # ------------------------------------------------------------------
    def duplicate(self, original: Element) -> Element:
        """A dirty copy of ``original`` (same gid attribute)."""
        copy = original.copy()
        self._drop_elements(copy)
        self._mutate_text(copy)
        return copy

    def duplicate_corpus(self, originals: list[Element]) -> list[Element]:
        """Dirty duplicates for a ``duplicate_fraction`` sample.

        The sample is the *first* ``round(fraction * n)`` objects after
        a seeded shuffle, so sweeping the fraction (Fig. 8) yields
        nested duplicate sets.
        """
        order = list(range(len(originals)))
        self.rng.shuffle(order)
        count = round(self.config.duplicate_fraction * len(originals))
        return [self.duplicate(originals[index]) for index in sorted(order[:count])]

    # ------------------------------------------------------------------
    def _drop_elements(self, element: Element) -> None:
        """Missing data: remove optional descendants with
        ``missing_rate``; never removes the last child of a parent."""
        if self.config.missing_rate <= 0:
            return
        removable: list[tuple[Element, Element]] = []
        for node in element.iter():
            children = node.children
            for child in children:
                relative = self._relative_path(element, child)
                if self.optional_paths is not None:
                    eligible = relative in self.optional_paths
                else:
                    eligible = len(children) > 1
                if eligible:
                    removable.append((node, child))
        for parent, child in removable:
            if len(parent.children) <= 1:
                continue  # keep parents non-empty
            if self.rng.random() < self.config.missing_rate:
                parent.remove(child)

    def _mutate_text(self, element: Element) -> None:
        """Typos and synonyms on the remaining text values."""
        for node in element.iter():
            if not node.children and node.text:
                value = node.text
                roll = self.rng.random()
                if roll < self.config.synonym_rate:
                    replaced = self.synonyms.substitute(value, self.rng)
                    if replaced != value:
                        _set_text(node, replaced)
                        continue
                    # No synonym known: fall through to the typo check
                    # so the overall error rate stays calibrated.
                if roll < self.config.synonym_rate + self.config.typo_rate:
                    _set_text(node, corrupt(value, self.rng))

    @staticmethod
    def _relative_path(root: Element, node: Element) -> str:
        parts: list[str] = []
        current: Element | None = node
        while current is not None and current is not root:
            parts.append(current.tag)
            current = current.parent
        return "/".join(reversed(parts))


def _set_text(node: Element, value: str) -> None:
    node._content = [value]  # noqa: SLF001 - generator-internal rewrite


def gold_id(element: Element) -> str | None:
    """The element's gold-standard id, if it carries one."""
    return element.get(GOLD_ATTRIBUTE)


def gold_pairs_from_elements(elements: list[Element]) -> set[tuple[int, int]]:
    """All unordered index pairs of elements sharing a gold id."""
    by_gid: dict[str, list[int]] = {}
    for index, element in enumerate(elements):
        gid = gold_id(element)
        if gid is not None:
            by_gid.setdefault(gid, []).append(index)
    pairs: set[tuple[int, int]] = set()
    for members in by_gid.values():
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                pairs.add((members[a], members[b]))
    return pairs
