"""FreeDB-like CD corpus generator (Datasets 1 and 3).

The paper extracts CD objects from freedb.de; the service is defunct
and the dump is not distributable, so this generator produces a corpus
with the same element inventory and statistical quirks the paper's
evaluation depends on (Table 5 and the Fig. 5 discussion):

* ``disc/did`` — automatically generated ids where many non-duplicate
  CDs differ by at most one character (the k=1 precision effect): ids
  are 8 hex chars, allocated in blocks sharing a 7-char prefix;
* ``disc/artist``, ``disc/title`` — mandatory, occasionally repeated
  (collaborations / title variants), so inference marks them not-SE;
* ``disc/genre`` — optional singleton with low identifying power;
* ``disc/year`` — date-typed singleton, 1960–2005;
* ``disc/cdextra`` — optional, repeatable free-text notes;
* ``disc/tracks/title`` — track titles; a ``dummy_fraction`` of CDs
  carries placeholder titles ("Track 01", ...) and anonymous artist
  metadata, FreeDB's hallmark dirt, which collapses precision once
  track titles join the description (k=8 in Fig. 5);
* for Dataset 3, planted *natural* duplicates: exact re-submissions
  and fuzzy near-duplicates of earlier discs.

Every disc carries a ``gid`` attribute as gold standard (attributes
never reach object descriptions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..xmlkit import Document, Element
from .dirty import GOLD_ATTRIBUTE
from .typos import corrupt
from .wordpools import (
    BAND_NOUNS,
    BAND_WORDS,
    CD_EXTRA_NOTES,
    FIRST_NAMES,
    GENRES,
    LAST_NAMES,
    TITLE_PATTERNS,
    TITLE_WORDS,
)

#: CDs per shared did prefix block (pairwise edit distance 1 inside a
#: block -> ned 1/8 = 0.125 < 0.15, i.e. "similar" at paper settings).
_DID_BLOCK = 4

#: The CD schema with exactly the Table 5 declarations:
#: did (string, ME, SE), artist (string, ME, not SE),
#: title (string, ME, not SE), genre (string, not ME, SE),
#: year (date, ME, SE), cdextra (string, not ME, not SE),
#: tracks (complex, ME, SE), tracks/title (string, ME, not SE).
CD_XSD = """<?xml version="1.0" encoding="UTF-8"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="freedb">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="disc" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="did" type="xs:string"/>
              <xs:element name="artist" type="xs:string" maxOccurs="unbounded"/>
              <xs:element name="title" type="xs:string" maxOccurs="unbounded"/>
              <xs:element name="genre" type="xs:string" minOccurs="0"/>
              <xs:element name="year" type="xs:gYear"/>
              <xs:element name="cdextra" type="xs:string" minOccurs="0"
                          maxOccurs="unbounded"/>
              <xs:element name="tracks">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="title" type="xs:string"
                                maxOccurs="unbounded"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
"""


def cd_schema():
    """Parse :data:`CD_XSD` into a schema object."""
    from ..xmlkit import parse_schema

    return parse_schema(CD_XSD)


@dataclass
class CDRecord:
    """One compact disc record."""

    gid: str
    did: str
    artists: list[str]
    titles: list[str]
    genre: str | None
    year: int
    extras: list[str]
    tracks: list[str]
    is_dummy: bool = False


@dataclass
class CDCorpus:
    """A generated corpus plus its gold standard.

    Records sharing a ``gid`` are duplicates of each other; the
    ``duplicated_gids`` set lists the gids that occur more than once.
    """

    records: list[CDRecord]
    duplicated_gids: set[str] = field(default_factory=set)

    def to_document(self) -> Document:
        root = Element("freedb")
        for record in self.records:
            root.append(cd_to_element(record))
        return Document(root)


def _artist_name(rng: random.Random) -> str:
    if rng.random() < 0.5:
        return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"
    return f"The {rng.choice(BAND_WORDS)} {rng.choice(BAND_NOUNS)}"


def _cd_title(rng: random.Random) -> str:
    pattern = rng.choice(TITLE_PATTERNS)
    a = rng.choice(TITLE_WORDS)
    b = rng.choice(TITLE_WORDS)
    while b == a:
        b = rng.choice(TITLE_WORDS)
    return pattern.format(a=a, b=b)


def _track_titles(rng: random.Random) -> list[str]:
    count = rng.randint(4, 12)
    titles = []
    for _ in range(count):
        title = _cd_title(rng)
        while title in titles:
            title = _cd_title(rng)
        titles.append(title)
    return titles


def _dummy_tracks(rng: random.Random) -> list[str]:
    count = rng.randint(10, 20)
    return [f"Track {index:02d}" for index in range(1, count + 1)]


def generate_cds(
    count: int,
    seed: int = 7,
    dummy_fraction: float = 0.20,
    gid_prefix: str = "cd",
) -> list[CDRecord]:
    """Generate ``count`` distinct (non-duplicate) CD records."""
    rng = random.Random(seed)
    records: list[CDRecord] = []
    for index in range(count):
        block, member = divmod(index, _DID_BLOCK)
        # Knuth-hash the block so different blocks differ in many hex
        # digits; members within a block differ only in the last digit
        # (edit distance 1 — the near-collision effect).
        prefix = (block * 2654435761) % 0x10000000
        did = f"{prefix:07x}{member:01x}"
        is_dummy = rng.random() < dummy_fraction and index > 0
        if is_dummy:
            artists = [rng.choice(("Unknown Artist", "Various Artists"))]
            titles = [f"New CD {rng.randint(1, 999)}"]
            genre = "Misc" if rng.random() < 0.8 else None
            extras: list[str] = []
            tracks = _dummy_tracks(rng)
        else:
            artists = [_artist_name(rng)]
            if rng.random() < 0.06:
                artists.append(_artist_name(rng))
            titles = [_cd_title(rng)]
            if rng.random() < 0.04:
                titles.append(_cd_title(rng))
            genre = rng.choice(GENRES) if rng.random() > 0.15 else None
            # cdextra is free text in FreeDB (the EXTD field): varied
            # per-disc comments, effectively unique.
            extras = (
                [
                    f"{rng.choice(TITLE_WORDS)} {rng.choice(BAND_NOUNS).lower()} "
                    f"sessions - {note.lower()}, no. {rng.randint(100, 99999)}"
                    for note in rng.sample(CD_EXTRA_NOTES, rng.randint(1, 2))
                ]
                if rng.random() < 0.4
                else []
            )
            tracks = _track_titles(rng)
        records.append(
            CDRecord(
                gid=f"{gid_prefix}{index}",
                did=did,
                artists=artists,
                titles=titles,
                genre=genre,
                year=rng.randint(1960, 2005),
                extras=extras,
                tracks=tracks,
                is_dummy=is_dummy,
            )
        )
    # The first record fixes the child order for schema inference:
    # did, artist, title, genre, year, cdextra, tracks (Table 5).
    first = records[0]
    if first.genre is None:
        first.genre = GENRES[0]
    if not first.extras:
        first.extras = [CD_EXTRA_NOTES[0]]
    return records


def cd_to_element(record: CDRecord) -> Element:
    """Render a record as a ``<disc>`` element (Table 5 structure)."""
    disc = Element("disc", {GOLD_ATTRIBUTE: record.gid})
    disc.append(Element("did", content=[record.did]))
    for artist in record.artists:
        disc.append(Element("artist", content=[artist]))
    for title in record.titles:
        disc.append(Element("title", content=[title]))
    if record.genre is not None:
        disc.append(Element("genre", content=[record.genre]))
    disc.append(Element("year", content=[str(record.year)]))
    for extra in record.extras:
        disc.append(Element("cdextra", content=[extra]))
    tracks = Element("tracks")
    for track in record.tracks:
        tracks.append(Element("title", content=[track]))
    disc.append(tracks)
    return disc


def freedb_corpus(count: int = 500, seed: int = 7) -> CDCorpus:
    """Dataset 1's base corpus: ``count`` non-duplicate CDs."""
    return CDCorpus(records=generate_cds(count, seed))


def _fuzzy_copy(record: CDRecord, gid: str, rng: random.Random) -> CDRecord:
    """A re-submission of the same disc with light errors."""
    copy = CDRecord(
        gid=gid,
        did=record.did,
        artists=list(record.artists),
        titles=list(record.titles),
        genre=record.genre,
        year=record.year,
        extras=list(record.extras),
        tracks=list(record.tracks),
        is_dummy=record.is_dummy,
    )
    if rng.random() < 0.6:
        copy.did = corrupt(copy.did, rng)
    if rng.random() < 0.5:
        copy.titles[0] = corrupt(copy.titles[0], rng)
    if rng.random() < 0.4:
        copy.artists[0] = corrupt(copy.artists[0], rng)
    if copy.extras and rng.random() < 0.5:
        copy.extras = []
    for index in range(len(copy.tracks)):
        if rng.random() < 0.15:
            copy.tracks[index] = corrupt(copy.tracks[index], rng)
    return copy


def freedb_large_corpus(
    count: int = 10_000,
    seed: int = 11,
    exact_duplicate_pairs: int = 27,
    fuzzy_duplicate_pairs: int = 30,
    dummy_fraction: float = 0.10,
) -> CDCorpus:
    """Dataset 3: a large "random FreeDB extract".

    Real FreeDB contains natural duplicates (re-submissions of the same
    disc) and lots of placeholder metadata; both are planted here with
    known gold pairs.  Defaults mirror the paper's findings: 27 exact
    duplicate pairs among the 252 pairs found at θ_cand = 0.55.
    """
    planted = exact_duplicate_pairs + fuzzy_duplicate_pairs
    if planted * 2 > count:
        raise ValueError("corpus too small for the requested duplicates")
    rng = random.Random(seed)
    base = generate_cds(count - planted, seed, dummy_fraction=dummy_fraction)
    # Duplicate targets: non-dummy discs, spread deterministically.
    targets = [record for record in base if not record.is_dummy]
    rng.shuffle(targets)
    duplicated: set[str] = set()
    extra_records: list[CDRecord] = []
    for index in range(exact_duplicate_pairs):
        original = targets[index]
        extra_records.append(  # exact re-submission: a verbatim copy
            CDRecord(
                gid=original.gid,
                did=original.did,
                artists=list(original.artists),
                titles=list(original.titles),
                genre=original.genre,
                year=original.year,
                extras=list(original.extras),
                tracks=list(original.tracks),
            )
        )
        duplicated.add(original.gid)
    for index in range(fuzzy_duplicate_pairs):
        original = targets[exact_duplicate_pairs + index]
        extra_records.append(_fuzzy_copy(original, original.gid, rng))
        duplicated.add(original.gid)
    records = base + extra_records
    rng.shuffle(records)
    return CDCorpus(records=records, duplicated_gids=duplicated)
