"""Synonym substitution.

The XML Dirty Data Generator's "percentage of synonymous (but
contradictory) data": equal meaning, different string — which the
similarity measure, lacking a thesaurus, sees as contradictory data
(the paper discusses exactly this limitation for Dataset 2).
"""

from __future__ import annotations

import random

#: Synonym groups: any member may replace any other.
_DEFAULT_GROUPS: tuple[tuple[str, ...], ...] = (
    ("Rock", "Rock & Roll"),
    ("Pop", "Popular"),
    ("Hip-Hop", "Rap"),
    ("Electronic", "Electronica"),
    ("Classical", "Classic"),
    ("Country", "Country & Western"),
    ("Soul", "R&B"),
    ("World", "International"),
    ("Metal", "Heavy Metal"),
    ("Folk", "Folklore"),
    ("Love", "Romance"),
    ("Night", "Evening"),
    ("Road", "Highway"),
    ("Home", "House"),
    ("Dream", "Reverie"),
    ("Ocean", "Sea"),
    ("Storm", "Tempest"),
    ("Song", "Tune"),
    ("Forever", "Eternally"),
    ("Journey", "Voyage"),
)


class SynonymTable:
    """Word-level synonym lookup with whole-value and token substitution."""

    def __init__(self, groups: tuple[tuple[str, ...], ...] = _DEFAULT_GROUPS) -> None:
        self._alternatives: dict[str, tuple[str, ...]] = {}
        for group in groups:
            for word in group:
                others = tuple(member for member in group if member != word)
                if not others:
                    raise ValueError(f"synonym group {group!r} needs >= 2 members")
                existing = self._alternatives.get(word, ())
                self._alternatives[word] = existing + tuple(
                    other for other in others if other not in existing
                )

    def __contains__(self, word: str) -> bool:
        return word in self._alternatives

    def alternatives(self, word: str) -> tuple[str, ...]:
        return self._alternatives.get(word, ())

    def substitute(self, value: str, rng: random.Random) -> str:
        """Replace the value, or one of its tokens, with a synonym.

        Whole-value synonyms take precedence (genre names); otherwise a
        random replaceable token is swapped.  Values with no known
        synonym are returned unchanged.
        """
        whole = self.alternatives(value)
        if whole:
            return rng.choice(whole)
        words = value.split(" ")
        replaceable = [index for index, word in enumerate(words) if word in self]
        if not replaceable:
            return value
        index = rng.choice(replaceable)
        words[index] = rng.choice(self.alternatives(words[index]))
        return " ".join(words)


DEFAULT_SYNONYMS = SynonymTable()
