"""Two-source movie corpus generator (Dataset 2).

The paper's Dataset 2 pairs 500 movies from IMDB with the same 500
movies from the German Film-Dienst catalog: same real-world objects,
different structure, different language, different date formats, no
scrubbing.  This generator renders one latent movie record into both
shapes (Table 6):

IMDB source (English)::

    <imdb>
      <movie gid="...">
        <year>1999</year>
        <title>The Matrix</title>
        <genre>Science Fiction</genre> ...
        <release-date><date>31 March 1999</date></release-date>
        <people>
          <actors><actor><name>...</name></actor>...</actors>
          <actresses><actress><name>...</name></actress>...</actresses>
          <producers><producer><name>...</name></producer>...</producers>
        </people>
      </movie>
    </imdb>

Film-Dienst source (German)::

    <filmdienst>
      <movie gid="...">
        <year>1999</year>
        <movie-title><title>Die deutsche Fassung</title></movie-title>
        <aka-title><title>The Matrix</title></aka-title>   (optional)
        <genres><genre>Science-Fiction</genre>...</genres>
        <premiere>17.06.1999</premiere>
        <people>
          <person><name>...</name></person>...
        </people>
      </movie>
    </filmdienst>

Cross-source evidence: the shared ``year``; the original title via the
optional ``aka-title``; person names (typo'd occasionally, sometimes in
"Last, First" order); genres that are cross-language synonyms — mostly
contradictory strings, occasionally similar by edit distance
("Science Fiction" / "Science-Fiction").  Dates are format-incompatible
on purpose.  This is exactly the harder scenario the paper predicts
poorer results for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..xmlkit import Document, Element
from .dirty import GOLD_ATTRIBUTE
from .typos import corrupt
from .wordpools import (
    FIRST_NAMES,
    LAST_NAMES,
    MONTH_NAMES_EN,
    MOVIE_GENRES_DE,
    MOVIE_GENRES_EN,
    MOVIE_TITLE_WORDS_DE,
    TITLE_PATTERNS,
    TITLE_WORDS,
)


#: The IMDB-shaped schema with the Table 6 flags: year (date, ME, not
#: SE), title (string, ME, SE), genre (string, not ME, not SE),
#: release-date/date (date, ME, SE), people/.../name (string, ME, SE).
IMDB_XSD = """<?xml version="1.0" encoding="UTF-8"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="imdb">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="movie" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="year" type="xs:gYear" maxOccurs="unbounded"/>
              <xs:element name="title" type="xs:string"/>
              <xs:element name="genre" type="xs:string" minOccurs="0"
                          maxOccurs="unbounded"/>
              <xs:element name="release-date">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="date" type="xs:date"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
              <xs:element name="people">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="actors">
                      <xs:complexType>
                        <xs:sequence>
                          <xs:element name="actor" minOccurs="0"
                                      maxOccurs="unbounded">
                            <xs:complexType>
                              <xs:sequence>
                                <xs:element name="name" type="xs:string"/>
                              </xs:sequence>
                            </xs:complexType>
                          </xs:element>
                        </xs:sequence>
                      </xs:complexType>
                    </xs:element>
                    <xs:element name="actresses">
                      <xs:complexType>
                        <xs:sequence>
                          <xs:element name="actress" minOccurs="0"
                                      maxOccurs="unbounded">
                            <xs:complexType>
                              <xs:sequence>
                                <xs:element name="name" type="xs:string"/>
                              </xs:sequence>
                            </xs:complexType>
                          </xs:element>
                        </xs:sequence>
                      </xs:complexType>
                    </xs:element>
                    <xs:element name="producers">
                      <xs:complexType>
                        <xs:sequence>
                          <xs:element name="producer" minOccurs="0"
                                      maxOccurs="unbounded">
                            <xs:complexType>
                              <xs:sequence>
                                <xs:element name="name" type="xs:string"/>
                              </xs:sequence>
                            </xs:complexType>
                          </xs:element>
                        </xs:sequence>
                      </xs:complexType>
                    </xs:element>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
"""

#: The Film-Dienst-shaped schema: year (date, ME, SE), movie-title/title
#: (string, ME, SE), aka-title/title (string, optional, not singleton),
#: genres/genre (string, not ME, not SE), premiere (date, not ME, SE),
#: people/person/name (string, ME, SE).
FILMDIENST_XSD = """<?xml version="1.0" encoding="UTF-8"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="filmdienst">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="movie" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="year" type="xs:gYear"/>
              <xs:element name="movie-title">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="title" type="xs:string"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
              <xs:element name="aka-title" minOccurs="0" maxOccurs="unbounded">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="title" type="xs:string"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
              <xs:element name="genres" minOccurs="0">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="genre" type="xs:string" minOccurs="0"
                                maxOccurs="unbounded"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
              <xs:element name="premiere" type="xs:date" minOccurs="0"/>
              <xs:element name="people">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="person" minOccurs="0"
                                maxOccurs="unbounded">
                      <xs:complexType>
                        <xs:sequence>
                          <xs:element name="name" type="xs:string"/>
                        </xs:sequence>
                      </xs:complexType>
                    </xs:element>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
"""


def imdb_schema():
    from ..xmlkit import parse_schema

    return parse_schema(IMDB_XSD)


def filmdienst_schema():
    from ..xmlkit import parse_schema

    return parse_schema(FILMDIENST_XSD)


@dataclass
class MovieRecord:
    """One latent movie: the real-world object behind both sources."""

    gid: str
    title_en: str
    title_de: str
    year: int
    genre_indexes: list[int]
    release_day: int
    release_month: int
    premiere_day: int
    premiere_month: int
    actors: list[str]        # male cast
    actresses: list[str]     # female cast
    producers: list[str]


@dataclass
class MovieCorpus:
    """The latent records plus both renderings."""

    records: list[MovieRecord]
    imdb: Document
    filmdienst: Document


def _movie_title_en(rng: random.Random) -> str:
    pattern = rng.choice(TITLE_PATTERNS)
    a = rng.choice(TITLE_WORDS)
    b = rng.choice(TITLE_WORDS)
    while b == a:
        b = rng.choice(TITLE_WORDS)
    return pattern.format(a=a, b=b)


def _movie_title_de(rng: random.Random) -> str:
    a = rng.choice(MOVIE_TITLE_WORDS_DE)
    b = rng.choice(MOVIE_TITLE_WORDS_DE)
    while b == a:
        b = rng.choice(MOVIE_TITLE_WORDS_DE)
    return rng.choice((f"{a} und {b}", f"Die {a}", f"{a} der {b}", f"Im {a}"))


def _person(rng: random.Random) -> str:
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def generate_movies(count: int, seed: int = 13) -> list[MovieRecord]:
    """``count`` latent movie records."""
    rng = random.Random(seed)
    records: list[MovieRecord] = []
    for index in range(count):
        genre_count = rng.randint(1, 3)
        genre_indexes = rng.sample(range(len(MOVIE_GENRES_EN)), genre_count)
        release_month = rng.randint(1, 12)
        # German premiere is weeks or months after the US release.
        premiere_month = min(12, release_month + rng.randint(0, 3))
        records.append(
            MovieRecord(
                gid=f"mv{index}",
                title_en=_movie_title_en(rng),
                title_de=_movie_title_de(rng),
                year=rng.randint(1960, 2004),
                genre_indexes=genre_indexes,
                release_day=rng.randint(1, 28),
                release_month=release_month,
                premiere_day=rng.randint(1, 28),
                premiere_month=premiere_month,
                actors=[_person(rng) for _ in range(rng.randint(1, 3))],
                actresses=[_person(rng) for _ in range(rng.randint(1, 2))],
                producers=[_person(rng) for _ in range(rng.randint(1, 2))],
            )
        )
    return records


def imdb_element(record: MovieRecord) -> Element:
    """Render the IMDB shape (English)."""
    movie = Element("movie", {GOLD_ATTRIBUTE: record.gid})
    movie.append(Element("year", content=[str(record.year)]))
    movie.append(Element("title", content=[record.title_en]))
    for index in record.genre_indexes:
        movie.append(Element("genre", content=[MOVIE_GENRES_EN[index]]))
    release = Element("release-date")
    release.append(
        Element(
            "date",
            content=[
                f"{record.release_day} "
                f"{MONTH_NAMES_EN[record.release_month - 1]} {record.year}"
            ],
        )
    )
    movie.append(release)
    people = Element("people")
    actors = Element("actors")
    for name in record.actors:
        actor = Element("actor")
        actor.append(Element("name", content=[name]))
        actors.append(actor)
    people.append(actors)
    actresses = Element("actresses")
    for name in record.actresses:
        actress = Element("actress")
        actress.append(Element("name", content=[name]))
        actresses.append(actress)
    people.append(actresses)
    producers = Element("producers")
    for name in record.producers:
        producer = Element("producer")
        producer.append(Element("name", content=[name]))
        producers.append(producer)
    people.append(producers)
    movie.append(people)
    return movie


def filmdienst_element(
    record: MovieRecord,
    rng: random.Random,
    aka_probability: float = 0.75,
    name_typo_rate: float = 0.10,
    name_inversion_rate: float = 0.15,
) -> Element:
    """Render the Film-Dienst shape (German), with source noise."""
    movie = Element("movie", {GOLD_ATTRIBUTE: record.gid})
    movie.append(Element("year", content=[str(record.year)]))
    movie_title = Element("movie-title")
    movie_title.append(Element("title", content=[record.title_de]))
    movie.append(movie_title)
    if rng.random() < aka_probability:
        aka = Element("aka-title")
        aka_value = record.title_en
        if rng.random() < 0.15:
            aka_value = corrupt(aka_value, rng)
        aka.append(Element("title", content=[aka_value]))
        movie.append(aka)
    genres = Element("genres")
    for index in record.genre_indexes:
        genres.append(Element("genre", content=[MOVIE_GENRES_DE[index]]))
    movie.append(genres)
    movie.append(
        Element(
            "premiere",
            content=[
                f"{record.premiere_day:02d}.{record.premiere_month:02d}."
                f"{record.year}"
            ],
        )
    )
    people = Element("people")
    for name in record.actors + record.actresses + record.producers:
        rendered = name
        if rng.random() < name_inversion_rate:
            first, _, last = name.partition(" ")
            rendered = f"{last}, {first}"
        elif rng.random() < name_typo_rate:
            rendered = corrupt(name, rng)
        person = Element("person")
        person.append(Element("name", content=[rendered]))
        people.append(person)
    movie.append(people)
    return movie


def movie_corpus(count: int = 500, seed: int = 13) -> MovieCorpus:
    """Dataset 2: the same ``count`` movies in both source shapes."""
    records = generate_movies(count, seed)
    rng = random.Random(seed + 1)
    imdb_root = Element("imdb")
    fd_root = Element("filmdienst")
    for record in records:
        imdb_root.append(imdb_element(record))
        fd_root.append(filmdienst_element(record, rng))
    return MovieCorpus(
        records=records,
        imdb=Document(imdb_root),
        filmdienst=Document(fd_root),
    )


def movie_sources() -> "tuple":
    """Both schemas, for dataset assembly."""
    return imdb_schema(), filmdienst_schema()


def movie_mapping():
    """The mapping *M* for Dataset 2 (Table 6 comparabilities)."""
    from ..framework import TypeMapping

    return (
        TypeMapping()
        .add("MOVIE", ["/imdb/movie", "/filmdienst/movie"])
        .add("YEAR", ["/imdb/movie/year", "/filmdienst/movie/year"])
        .add(
            "TITLE",
            [
                "/imdb/movie/title",
                "/filmdienst/movie/movie-title/title",
                "/filmdienst/movie/aka-title/title",
            ],
        )
        .add("GENRE", ["/imdb/movie/genre", "/filmdienst/movie/genres/genre"])
        .add(
            "RELEASE",
            ["/imdb/movie/release-date/date", "/filmdienst/movie/premiere"],
        )
        .add(
            "PERSONNAME",
            [
                "/imdb/movie/people/actors/actor/name",
                "/imdb/movie/people/actresses/actress/name",
                "/imdb/movie/people/producers/producer/name",
                "/filmdienst/movie/people/person/name",
            ],
        )
    )
