"""The paper's running example (Tables 1–3, Figures 2–3).

Three movies — two Matrix representations and Signs — with the schema
of Fig. 2 and the mapping of Table 3.  Used by the quickstart example
and as a fixture for tests that pin the worked-example semantics.
"""

from __future__ import annotations

from ..framework import TypeMapping
from ..xmlkit import Document, Schema, parse_schema

#: Table 1, rendered as the Fig. 2 document structure.
PAPER_EXAMPLE_XML = """<?xml version="1.0" encoding="UTF-8"?>
<moviedoc>
  <movie id="1">
    <title>The Matrix</title>
    <year>1999</year>
    <actor>
      <name>Keanu Reeves</name>
      <role>Neo</role>
    </actor>
    <actor>
      <name>L. Fishburne</name>
      <role>Morpheus</role>
    </actor>
  </movie>
  <movie id="2">
    <title>Matrix</title>
    <year>1999</year>
    <actor>
      <name>Keanu Reeves</name>
      <role>The One</role>
    </actor>
  </movie>
  <movie id="3">
    <title>Signs</title>
    <year>2002</year>
    <actor>
      <name>Mel Gibson</name>
      <role>Graham Hess</role>
    </actor>
  </movie>
</moviedoc>
"""

#: Fig. 2 as an XSD (subset) document.
PAPER_EXAMPLE_XSD = """<?xml version="1.0" encoding="UTF-8"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="moviedoc">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="movie" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="title" type="xs:string"/>
              <xs:element name="year" type="xs:gYear"/>
              <xs:element name="actor" minOccurs="0" maxOccurs="unbounded">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="name" type="xs:string"/>
                    <xs:element name="role" type="xs:string" minOccurs="0"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
"""


def paper_example_document() -> Document:
    from ..xmlkit import parse

    return parse(PAPER_EXAMPLE_XML)


def paper_example_schema() -> Schema:
    return parse_schema(PAPER_EXAMPLE_XSD)


def paper_example_mapping() -> TypeMapping:
    """Table 3's mapping M."""
    return (
        TypeMapping()
        .add("MOVIE", "/moviedoc/movie")
        .add("TITLE", "/moviedoc/movie/title")
        .add("YEAR", "/moviedoc/movie/year")
        .add("ACTOR", "/moviedoc/movie/actor")
        .add("ACTORNAME", "/moviedoc/movie/actor/name")
        .add("ACTORROLE", "/moviedoc/movie/actor/role")
    )
