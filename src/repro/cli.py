"""Command-line interface.

    python -m repro.cli dedup DOCUMENT... --mapping MAPPING.xml --type T
    python -m repro.cli suggest DOCUMENT [--schema SCHEMA.xsd]
    python -m repro.cli example

``dedup`` runs DogmatiX over one or more XML documents and writes the
Fig. 3 dupcluster document; ``suggest`` ranks candidate element types
of a document's (inferred or given) schema; ``example`` replays the
paper's running example.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core import (
    DogmatiX,
    DogmatixConfig,
    KClosestDescendants,
    RDistantAncestors,
    RDistantDescendants,
    Source,
    c_and,
    c_cm,
    c_me,
    c_sdt,
    c_se,
    h_or,
)
from .core.candidates_auto import suggest_candidates
from .engine import DEFAULT_BATCH_SIZE, ExecutionPolicy
from .framework import mapping_from_xml
from .xmlkit import infer_schema, parse_file, parse_schema_file

_CONDITIONS = {"cm": c_cm, "sdt": c_sdt, "me": c_me, "se": c_se}


def _parse_heuristic(spec: str):
    """Parse ``kclosest:6``, ``rdistant:2``, ``ancestors:1``, and
    ``+``-joined unions like ``rdistant:1+ancestors:1``."""
    parts = spec.split("+")
    heuristics = []
    for part in parts:
        name, _, raw = part.partition(":")
        if not raw or not raw.isdigit():
            raise argparse.ArgumentTypeError(
                f"heuristic {part!r} must look like name:number"
            )
        value = int(raw)
        if name in ("kclosest", "k"):
            heuristics.append(KClosestDescendants(value))
        elif name in ("rdistant", "r"):
            heuristics.append(RDistantDescendants(value))
        elif name in ("ancestors", "a"):
            heuristics.append(RDistantAncestors(value))
        else:
            raise argparse.ArgumentTypeError(f"unknown heuristic {name!r}")
    combined = heuristics[0]
    for heuristic in heuristics[1:]:
        combined = h_or(combined, heuristic)
    return combined


def _bounded_int(minimum: int, what: str):
    """argparse type: an integer >= ``minimum``, with a named error."""

    def parse(raw: str) -> int:
        try:
            value = int(raw)
        except ValueError:
            value = None
        if value is None or value < minimum:
            raise argparse.ArgumentTypeError(
                f"{what} must be an integer >= {minimum}, got {raw!r}"
            )
        return value

    return parse


def _parse_condition(spec: Optional[str]):
    if not spec:
        return None
    names = [name.strip() for name in spec.split(",") if name.strip()]
    try:
        conditions = [_CONDITIONS[name] for name in names]
    except KeyError as exc:
        raise argparse.ArgumentTypeError(
            f"unknown condition {exc.args[0]!r}; choose from {sorted(_CONDITIONS)}"
        ) from None
    return c_and(*conditions)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DogmatiX: duplicate detection in XML (SIGMOD 2005 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    dedup = commands.add_parser("dedup", help="detect duplicates in XML documents")
    dedup.add_argument("documents", nargs="+", help="XML document file(s)")
    dedup.add_argument("--mapping", required=True, help="mapping M file (XML)")
    dedup.add_argument("--type", required=True, dest="real_world_type",
                       help="real-world type to deduplicate")
    dedup.add_argument("--schema", action="append", default=[],
                       help="XSD file per document (else inferred)")
    dedup.add_argument("--heuristic", type=_parse_heuristic,
                       default=KClosestDescendants(6),
                       help="kclosest:N | rdistant:N | ancestors:N, join with +")
    dedup.add_argument("--conditions", type=_parse_condition, default=None,
                       help="comma list of cm,sdt,me,se (ANDed)")
    dedup.add_argument("--theta-tuple", type=float, default=0.15)
    dedup.add_argument("--theta-cand", type=float, default=0.55)
    dedup.add_argument("--no-filter", action="store_true",
                       help="disable the object filter")
    dedup.add_argument("--workers", type=_bounded_int(0, "workers"), default=1,
                       help="classification worker processes "
                            "(1 = serial, 0 = all cores)")
    dedup.add_argument("--batch-size", type=_bounded_int(1, "batch size"),
                       default=DEFAULT_BATCH_SIZE,
                       help="candidate pairs per classification batch")
    dedup.add_argument("--output", help="write dupclusters XML here (default stdout)")
    dedup.add_argument("--explain", action="store_true",
                       help="print a similarity breakdown per duplicate pair")

    suggest = commands.add_parser(
        "suggest", help="rank candidate element types of a document"
    )
    suggest.add_argument("document")
    suggest.add_argument("--schema", help="XSD file (else inferred)")
    suggest.add_argument("--limit", type=int, default=5)

    commands.add_parser("example", help="run the paper's running example")
    return parser


def _command_dedup(args: argparse.Namespace) -> int:
    schemas = [parse_schema_file(path) for path in args.schema]
    sources = []
    for index, path in enumerate(args.documents):
        document = parse_file(path)
        schema = schemas[index] if index < len(schemas) else None
        sources.append(Source(document, schema))
    with open(args.mapping, encoding="utf-8") as handle:
        mapping = mapping_from_xml(handle.read())

    config = DogmatixConfig(
        heuristic=args.heuristic,
        condition=args.conditions,
        theta_tuple=args.theta_tuple,
        theta_cand=args.theta_cand,
        use_object_filter=not args.no_filter,
        execution=ExecutionPolicy.for_workers(args.workers, args.batch_size),
    )
    algorithm = DogmatiX(config)
    result = algorithm.run(sources, mapping, args.real_world_type)
    print(result.summary(), file=sys.stderr)

    if args.explain and algorithm.last_similarity is not None:
        by_id = {od.object_id: od for od in result.ods}
        for pair in result.duplicate_pairs:
            explanation = algorithm.last_similarity.explain(
                by_id[pair.left], by_id[pair.right]
            )
            print(
                f"# {result.object_path(pair.left)} ~ "
                f"{result.object_path(pair.right)} "
                f"(sim={pair.similarity:.3f})",
                file=sys.stderr,
            )
            for left, right in explanation["similar_pairs"]:
                print(f"#   similar: {left} ~ {right}", file=sys.stderr)
            for left, right in explanation["contradictory_pairs"]:
                print(f"#   contra:  {left} vs {right}", file=sys.stderr)

    output = result.to_xml()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(output)
    else:
        print(output)
    return 0


def _command_suggest(args: argparse.Namespace) -> int:
    document = parse_file(args.document)
    schema = (
        parse_schema_file(args.schema) if args.schema else infer_schema(document)
    )
    suggestions = suggest_candidates(schema, [document], limit=args.limit)
    if not suggestions:
        print("no plausible candidate element types found", file=sys.stderr)
        return 1
    for suggestion in suggestions:
        flags = "repeatable" if suggestion.repeatable else "singleton"
        print(
            f"{suggestion.xpath:<40} score={suggestion.score:6.2f} "
            f"{flags}, {suggestion.simple_children} describing elements"
        )
    return 0


def _command_example(_: argparse.Namespace) -> int:
    from .core import RDistantDescendants
    from .datagen import (
        paper_example_document,
        paper_example_mapping,
        paper_example_schema,
    )

    config = DogmatixConfig(
        heuristic=RDistantDescendants(2),
        theta_tuple=0.55,
        theta_cand=0.55,
        use_object_filter=False,
    )
    result = DogmatiX(config).run(
        Source(paper_example_document(), paper_example_schema()),
        paper_example_mapping(),
        "MOVIE",
    )
    print(result.summary(), file=sys.stderr)
    print(result.to_xml())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "dedup": _command_dedup,
        "suggest": _command_suggest,
        "example": _command_example,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
