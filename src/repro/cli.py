"""Command-line interface.

    python -m repro.cli dedup DOCUMENT... --mapping MAPPING.xml --type T
    python -m repro.cli dedup --spec run.json [--store DIR]
    python -m repro.cli match --spec run.json --object-id N
    python -m repro.cli index build --spec run.json --store DIR
    python -m repro.cli index list --store DIR
    python -m repro.cli serve --store DIR [--port N]
    python -m repro.cli lint [PATH...] [--format text|json]
    python -m repro.cli suggest DOCUMENT [--schema SCHEMA.xsd]
    python -m repro.cli example [--write DIR]

``dedup`` runs a detection session over one or more XML documents and
writes the Fig. 3 dupcluster document; ``match`` looks up the duplicate
partners of a single object against the session's standing index;
``index build`` runs corpus construction once and saves a versioned,
content-addressed snapshot that later ``dedup``/``match`` invocations
warm-start from via ``--store`` (``index list`` catalogs a store);
``serve`` runs the detection-as-a-service HTTP daemon over a store
(see :mod:`repro.serve`);
``lint`` runs the invariant checker (:mod:`repro.analysis`) over
python sources — the concurrency/determinism contracts of ROADMAP
"Static analysis & invariants" as a gating static pass (exit 1 on any
finding);
``suggest`` ranks candidate element types of a document's (inferred or
given) schema; ``example`` replays the paper's running example (or,
with ``--write``, emits it as files plus a ready ``run.json`` spec).

``--spec`` loads a serialized :class:`repro.api.RunSpec`; explicit
flags override the spec's fields.  ``--ingest-workers N`` builds the
corpus (parsing, OD generation, indexing) across N processes.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .api import (
    DetectionSession,
    RunSpec,
    condition_from_spec,
    heuristic_from_spec,
)
from .api.registries import ENCODINGS, SEMANTICS, STRATEGIES
from .core.candidates_auto import suggest_candidates
from .engine import SHARD_MODES
from .xmlkit import infer_schema, parse_file, parse_schema_file


def _parse_heuristic(spec: str):
    """Registry-backed heuristic parsing with argparse-friendly errors."""
    try:
        return heuristic_from_spec(spec)
    except (ValueError, LookupError) as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_condition(spec: Optional[str]):
    try:
        return condition_from_spec(spec)
    except (ValueError, LookupError) as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _bounded_int(minimum: int, what: str):
    """argparse type: an integer >= ``minimum``, with a named error."""

    def parse(raw: str) -> int:
        try:
            value = int(raw)
        except ValueError:
            value = None
        if value is None or value < minimum:
            raise argparse.ArgumentTypeError(
                f"{what} must be an integer >= {minimum}, got {raw!r}"
            )
        return value

    return parse


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by ``dedup`` and ``match`` (one run's inputs)."""
    parser.add_argument("documents", nargs="*", help="XML document file(s)")
    parser.add_argument("--spec", help="RunSpec JSON file; flags override it")
    parser.add_argument("--mapping", help="mapping M file (XML)")
    parser.add_argument("--type", dest="real_world_type",
                        help="real-world type to deduplicate")
    parser.add_argument("--schema", action="append", default=[],
                        help="XSD file, paired with the documents "
                             "positionally: the i-th --schema belongs to "
                             "the i-th document, remaining documents get "
                             "inferred schemas; more --schema flags than "
                             "documents is an error")
    parser.add_argument("--heuristic", default=None,
                        help="kclosest:N | rdistant:N | ancestors:N, "
                             "join with + (default kclosest:6)")
    parser.add_argument("--conditions", default=None,
                        help="comma list of cm,sdt,me,se (ANDed)")
    parser.add_argument("--semantics", default=None,
                        choices=SEMANTICS.names(),
                        help="similar-pair semantics of the measure")
    parser.add_argument("--similarity-strategy", default=None,
                        choices=STRATEGIES.names(),
                        help="similar-value search strategy behind the "
                             "index: 'qgram' (count-filter oracle) or "
                             "'signature' (prefix filtering); results "
                             "are bit-identical, only candidate "
                             "generation and wall-clock differ")
    parser.add_argument("--index-encoding", default=None,
                        choices=ENCODINGS.names(),
                        help="index-state encoding applied at freeze: "
                             "'dict' (the original representation) or "
                             "'compact' (interned string tables + flat "
                             "sorted posting arrays); results are "
                             "bit-identical, only memory and warm-load "
                             "time differ")
    parser.add_argument("--theta-tuple", type=float, default=None)
    parser.add_argument("--theta-cand", type=float, default=None)
    parser.add_argument("--no-filter", action="store_true",
                        help="disable the object filter")
    parser.add_argument("--workers", type=_bounded_int(0, "workers"),
                        default=None,
                        help="worker processes for pair classification — "
                             "and, with --shard-by, for pair generation "
                             "too (1 = serial, 0 = all cores)")
    parser.add_argument("--batch-size", type=_bounded_int(1, "batch size"),
                        default=None,
                        help="candidate pairs per classification batch")
    parser.add_argument("--shard-by", choices=SHARD_MODES, default=None,
                        help="shard pair generation into the workers "
                             "(backend 'shard'): 'block' hashes blocking "
                             "keys onto shards, 'object' balances "
                             "ownership per pair; results are "
                             "bit-identical to serial either way")
    parser.add_argument("--filter-in-workers", action="store_true",
                        help="evaluate the object filter f(OD_i) inside "
                             "the workers too (implies the shard "
                             "backend): candidates are hashed onto "
                             "shards and each worker scores its own "
                             "share, removing the last serial "
                             "parent-side pass of step 4; results stay "
                             "bit-identical, including pruned-object "
                             "order")
    parser.add_argument("--ingest-workers",
                        type=_bounded_int(0, "ingest workers"),
                        default=None,
                        help="worker processes for corpus construction "
                             "(parsing, OD generation, index build): "
                             "each worker builds a partial index the "
                             "parent merges; 1 = build in the parent, "
                             "0 = all cores; results are identical")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="index snapshot store: load a warm "
                             "content-addressed snapshot of this run's "
                             "corpus if one exists, else build and "
                             "save one (see the 'index' subcommand)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DogmatiX: duplicate detection in XML (SIGMOD 2005 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    dedup = commands.add_parser("dedup", help="detect duplicates in XML documents")
    _add_run_arguments(dedup)
    dedup.add_argument("--output", help="write dupclusters XML here (default stdout)")
    dedup.add_argument("--explain", action="store_true",
                       help="print a similarity breakdown per duplicate pair")

    match = commands.add_parser(
        "match", help="find the duplicate partners of one object"
    )
    _add_run_arguments(match)
    match.add_argument("--object-id", type=_bounded_int(0, "object id"),
                       default=None,
                       help="candidate-set id of the object to match")
    match.add_argument("--path",
                       help="absolute positional XPath of the object "
                            "(e.g. /moviedoc/movie[2])")
    match.add_argument("--top", type=_bounded_int(1, "top"), default=None,
                       help="report at most this many partners")

    suggest = commands.add_parser(
        "suggest", help="rank candidate element types of a document"
    )
    suggest.add_argument("document")
    suggest.add_argument("--schema", help="XSD file (else inferred)")
    suggest.add_argument("--limit", type=int, default=5)

    index = commands.add_parser(
        "index",
        help="build, persist, and inspect index snapshots",
        description="Index snapshot management: 'index build' runs "
                    "corpus construction (steps 1-3 + index) for a run "
                    "spec and saves a versioned, content-addressed "
                    "snapshot; 'index list' catalogs a store. "
                    "'dedup'/'match' warm-start from the same store "
                    "via their --store flag.",
    )
    index_actions = index.add_subparsers(dest="index_action", required=True)
    index_build = index_actions.add_parser(
        "build", help="build a session and save its snapshot"
    )
    _add_run_arguments(index_build)
    index_build.add_argument("--force", action="store_true",
                             help="rebuild and overwrite even if a "
                                  "snapshot for this corpus exists")
    index_list = index_actions.add_parser(
        "list", help="list the snapshots of a store"
    )
    index_list.add_argument("--store", metavar="DIR", required=True,
                            help="index snapshot store directory")

    serve = commands.add_parser(
        "serve",
        help="run the detection-as-a-service HTTP daemon",
        description="Long-running daemon over an index snapshot store: "
                    "POST /corpora opens (warm-loads or builds) a "
                    "corpus and returns its content digest; "
                    "GET/POST /corpora/<digest>/match answers "
                    "single-object lookups concurrently against the "
                    "warm session; detect/extend run behind the "
                    "session's writer lock.  See README 'Serving'.",
    )
    serve.add_argument("--store", metavar="DIR", required=True,
                       help="index snapshot store the daemon serves "
                            "from (and saves cold builds into)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=_bounded_int(0, "port"), default=8765,
                       help="TCP port (0 = pick a free one)")
    serve.add_argument("--max-sessions",
                       type=_bounded_int(1, "max sessions"), default=4,
                       help="resident warm sessions (LRU; evicted "
                            "corpora warm-load again on demand)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")

    lint = commands.add_parser(
        "lint",
        help="run the invariant checker over python sources",
        description="Static analysis of the codebase's concurrency and "
                    "determinism contracts (repro.analysis): live "
                    "containers escaping shared classes, per-process "
                    "hash(), frozen-index discipline, unlocked "
                    "read-modify-writes, nondeterministic set ordering "
                    "in parity modules, unpicklable pool payloads. "
                    "Exit 0 when clean, 1 on any finding (unused "
                    "suppression pragmas are findings too).",
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to check (default: src)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="stdout format (text report or the versioned "
                           "JSON document)")
    lint.add_argument("--json-output", metavar="FILE", default=None,
                      help="additionally write the JSON report here "
                           "(CI artifact alongside the text log)")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="list pragma-suppressed findings in the text "
                           "report")
    lint.add_argument("--rules", action="store_true", dest="list_rules",
                      help="list the registered rules and exit")

    example = commands.add_parser(
        "example", help="run the paper's running example"
    )
    example.add_argument("--write", metavar="DIR",
                         help="instead of running, write the example "
                              "document, schema, mapping, and a ready "
                              "run.json spec into DIR")
    return parser


def _spec_from_args(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> RunSpec:
    """Resolve ``--spec`` plus overriding flags into one RunSpec."""
    if args.spec:
        if args.documents or args.mapping or args.real_world_type or args.schema:
            parser.error(
                "--spec already names documents, schemas, mapping, and "
                "type; do not combine it with positional documents, "
                "--schema, --mapping, or --type"
            )
        try:
            spec = RunSpec.load(args.spec)
        except (OSError, ValueError, LookupError) as exc:
            parser.error(f"cannot load spec {args.spec!r}: {exc}")
    else:
        if not args.documents:
            parser.error("documents are required (or use --spec)")
        if not args.mapping or not args.real_world_type:
            parser.error("--mapping and --type are required (or use --spec)")
        if len(args.schema) > len(args.documents):
            parser.error(
                f"got {len(args.schema)} --schema files for "
                f"{len(args.documents)} documents; --schema flags pair "
                "with documents positionally"
            )
        spec = RunSpec(
            documents=list(args.documents),
            mapping=args.mapping,
            real_world_type=args.real_world_type,
            schemas=list(args.schema),
        )
    if args.heuristic is not None:
        try:
            heuristic_from_spec(args.heuristic)
        except (ValueError, LookupError) as exc:
            parser.error(f"--heuristic: {exc}")
        spec.heuristic = args.heuristic
    if args.conditions is not None:
        try:
            condition_from_spec(args.conditions)
        except (ValueError, LookupError) as exc:
            parser.error(f"--conditions: {exc}")
        spec.conditions = args.conditions
    if args.semantics is not None:
        spec.similar_semantics = args.semantics
    if args.similarity_strategy is not None:
        spec.similarity_strategy = args.similarity_strategy
    if args.index_encoding is not None:
        spec.index_encoding = args.index_encoding
    if args.theta_tuple is not None:
        spec.theta_tuple = args.theta_tuple
    if args.theta_cand is not None:
        spec.theta_cand = args.theta_cand
    if args.no_filter:
        spec.use_object_filter = False
    if args.workers is not None:
        spec.workers = args.workers
        if spec.backend != "shard":
            spec.backend = None  # re-derive from the worker count;
            # a spec-declared shard backend is kept (only --shard-by
            # or the spec itself selects it, and re-deriving would
            # silently demote it to parent-side enumeration)
    if args.batch_size is not None:
        spec.batch_size = args.batch_size
    if args.ingest_workers is not None:
        spec.ingest_workers = args.ingest_workers
    if args.shard_by is not None:
        spec.shard_by = args.shard_by
        spec.backend = "shard"  # sharded generation needs the shard backend
    if args.filter_in_workers:
        spec.filter_in_workers = True
        spec.backend = "shard"  # worker-side filtering implies it too
    if spec.filter_in_workers and not spec.use_object_filter:
        # Flag overrides mutate the spec after __post_init__, so the
        # RunSpec invariant must be re-checked here (e.g. a spec with
        # the filter disabled combined with --filter-in-workers).
        parser.error(
            "--filter-in-workers has no filter to shard: the object "
            "filter is disabled (--no-filter or the spec's "
            "use_object_filter)"
        )
    return spec


def _session_for_spec(spec: RunSpec, store_dir: Optional[str]):
    """Build a session — through the snapshot store when one is given.

    With ``--store``: load the warm snapshot whose content key matches
    the spec's corpus, or build cold and save one for next time.
    """
    if store_dir is None:
        return spec.build_session()
    from .ingest import IndexStore

    store = IndexStore(store_dir)
    digest = store.key_for(spec)  # one corpus hash, reused throughout
    session = store.load(spec, digest=digest)
    if session is not None:
        print(
            f"warm start: loaded snapshot {digest[:12]} from {store_dir}",
            file=sys.stderr,
        )
        return session
    session = spec.build_session()
    store.save(spec, session, digest=digest)
    print(f"saved index snapshot {digest[:12]} to {store_dir}", file=sys.stderr)
    return session


def _command_dedup(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    spec = _spec_from_args(args, parser)
    session = _session_for_spec(spec, args.store)
    result = session.detect()
    print(result.summary(), file=sys.stderr)

    if args.explain:
        for pair in result.duplicate_pairs:
            print(
                f"# {result.object_path(pair.left)} ~ "
                f"{result.object_path(pair.right)} "
                f"(sim={pair.similarity:.3f})",
                file=sys.stderr,
            )
            explanation = session.explain(pair.left, pair.right)
            for left, right in explanation.similar_pairs:
                print(f"#   similar: {left} ~ {right}", file=sys.stderr)
            for left, right in explanation.contradictory_pairs:
                print(f"#   contra:  {left} vs {right}", file=sys.stderr)

    output = result.to_xml()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(output)
    else:
        print(output)
    return 0


def _command_match(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if (args.object_id is None) == (args.path is None):
        parser.error("match needs exactly one of --object-id or --path")
    spec = _spec_from_args(args, parser)
    session = _session_for_spec(spec, args.store)

    if args.object_id is not None:
        if args.object_id >= len(session.ods):
            parser.error(
                f"--object-id {args.object_id} out of range; the session "
                f"has {len(session.ods)} candidates"
            )
        target: object = args.object_id
    else:
        by_path = {
            session.object_path(od.object_id): od.object_id
            for od in session.ods
        }
        if args.path not in by_path:
            parser.error(f"no candidate at path {args.path!r}")
        target = by_path[args.path]

    matches = session.match(target)
    if args.top is not None:
        matches = matches[: args.top]
    print(
        f"{session.object_path(target)}: {len(matches)} duplicate partner(s)",
        file=sys.stderr,
    )
    for found in matches:
        print(f"{found.path}\t{found.similarity:.4f}")
    return 0


def _command_index(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from .ingest import IndexStore

    if args.index_action == "list":
        store = IndexStore(args.store)
        snapshots = store.list()
        if not snapshots:
            print("store is empty", file=sys.stderr)
            return 0
        for info in snapshots:
            print(
                f"{info.digest[:12]}  {info.real_world_type:<12} "
                f"{info.objects:>7} objects  {info.sources:>3} source(s)"
            )
        return 0

    # index build
    if not args.store:
        parser.error("index build requires --store DIR")
    spec = _spec_from_args(args, parser)
    store = IndexStore(args.store)
    digest = store.key_for(spec)  # one corpus hash, reused throughout
    if not args.force and store.contains(spec, digest=digest):
        print(
            f"snapshot {digest[:12]} already covers this corpus "
            "(use --force to rebuild)",
            file=sys.stderr,
        )
        print(digest)
        return 0
    session = spec.build_session()
    store.save(spec, session, digest=digest)
    print(
        f"built {len(session.ods)} object descriptions; "
        f"snapshot saved to {args.store}",
        file=sys.stderr,
    )
    print(digest)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from .serve import serve

    return serve(
        args.store,
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        quiet=args.quiet,
    )


def _command_lint(args: argparse.Namespace) -> int:
    from .analysis import all_rules, lint_paths, render_json, render_text

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:<32} {rule.summary}")
        return 0
    result = lint_paths(args.paths)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    if args.json_output:
        with open(args.json_output, "w", encoding="utf-8") as handle:
            handle.write(render_json(result))
            handle.write("\n")
    return 0 if result.clean else 1


def _command_suggest(args: argparse.Namespace) -> int:
    document = parse_file(args.document)
    schema = (
        parse_schema_file(args.schema) if args.schema else infer_schema(document)
    )
    suggestions = suggest_candidates(schema, [document], limit=args.limit)
    if not suggestions:
        print("no plausible candidate element types found", file=sys.stderr)
        return 1
    for suggestion in suggestions:
        flags = "repeatable" if suggestion.repeatable else "singleton"
        print(
            f"{suggestion.xpath:<40} score={suggestion.score:6.2f} "
            f"{flags}, {suggestion.simple_children} describing elements"
        )
    return 0


def _example_spec() -> RunSpec:
    """The running example's configuration as a (relative-path) spec."""
    return RunSpec(
        documents=["movies.xml"],
        mapping="mapping.xml",
        real_world_type="MOVIE",
        schemas=["movies.xsd"],
        heuristic="rdistant:2",
        theta_tuple=0.55,
        theta_cand=0.55,
        use_object_filter=False,
    )


def _command_example(args: argparse.Namespace) -> int:
    from .core import DogmatixConfig, RDistantDescendants, Source
    from .datagen import (
        PAPER_EXAMPLE_XML,
        PAPER_EXAMPLE_XSD,
        paper_example_document,
        paper_example_mapping,
        paper_example_schema,
    )

    if args.write:
        import os

        os.makedirs(args.write, exist_ok=True)

        def write(name: str, text: str) -> str:
            path = os.path.join(args.write, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            return path

        write("movies.xml", PAPER_EXAMPLE_XML)
        write("movies.xsd", PAPER_EXAMPLE_XSD)
        write("mapping.xml", paper_example_mapping().to_xml())
        spec_path = write("run.json", _example_spec().to_json())
        print(f"wrote the running example to {args.write}", file=sys.stderr)
        print(spec_path)
        return 0

    config = DogmatixConfig(
        heuristic=RDistantDescendants(2),
        theta_tuple=0.55,
        theta_cand=0.55,
        use_object_filter=False,
    )
    session = DetectionSession(
        Source(paper_example_document(), paper_example_schema()),
        paper_example_mapping(),
        "MOVIE",
        config,
    )
    result = session.detect()
    print(result.summary(), file=sys.stderr)
    print(result.to_xml())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "dedup":
        return _command_dedup(args, parser)
    if args.command == "match":
        return _command_match(args, parser)
    if args.command == "index":
        return _command_index(args, parser)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "lint":
        return _command_lint(args)
    if args.command == "suggest":
        return _command_suggest(args)
    return _command_example(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
