"""Checker configuration: which classes/modules carry which contracts.

The rules are generic AST patterns; this config binds them to the
concrete contracts of this codebase (see ROADMAP "Static analysis &
invariants").  Everything is overridable so rule fixtures can test the
patterns against synthetic classes without masquerading as the real
ones.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LintConfig:
    """Binds the invariant rules to this codebase's contracts."""

    #: Classes whose instances are shared across reader threads (the
    #: serve layer's lock-free ``match()`` path) or across requests.
    #: RPR001 forbids their public methods leaking live containers;
    #: RPR004 forbids unlocked read-modify-writes on their attributes.
    shared_classes: frozenset[str] = frozenset(
        {
            "CorpusIndex",
            "QGramIndex",
            "SignatureIndex",
            "DetectionSession",
            "DogmatixSimilarity",
            "ObjectFilter",
            "SessionRegistry",
            "SessionEntry",
            "ReadWriteLock",
            "IndexStore",
            # Compact-encoding structures: frozen indexes hand these out
            # to lock-free readers, so the no-live-escape contract
            # applies verbatim (RPR001 also covers memoryview windows).
            "StringTable",
            "PostingLists",
            "CompactGramStore",
            "CompactValueIndex",
            "CompactTermIndex",
        }
    )

    #: Classes pinned read-only after build (``freeze()``/``thaw()``
    #: seam).  RPR003 restricts state mutation to the sanctioned
    #: writer set below.  The compact structures are immutable by
    #: construction — any post-``__init__`` assignment is a bug.
    frozen_classes: frozenset[str] = frozenset(
        {
            "CorpusIndex",
            "StringTable",
            "PostingLists",
            "CompactGramStore",
            "CompactValueIndex",
            "CompactTermIndex",
        }
    )

    #: The sanctioned writers of a frozen class: construction, the one
    #: delta-merge seam, and the pin itself.  Writers other than
    #: ``__init__``/``freeze``/``thaw`` must also assert mutability
    #: (reference ``self._frozen``) so a frozen instance fails loudly.
    frozen_writers: frozenset[str] = frozenset(
        {"__init__", "merge_partial", "freeze", "thaw"}
    )

    #: Memo-cache attributes exempt from the freeze discipline: their
    #: entries are idempotent per-key values computed from frozen
    #: state, and CPython dict assignment is atomic (see
    #: ``CorpusIndex.freeze``).
    frozen_memo_attrs: frozenset[str] = frozenset(
        {"_similar_cache", "_pair_idf_cache", "_statistics_cache"}
    )

    #: Module prefixes where result/serialization ordering feeds the
    #: bit-identical parity contract — RPR005 flags ordered collections
    #: built directly from set iteration there.
    parity_modules: tuple[str, ...] = (
        "repro.framework",
        "repro.core",
        "repro.engine",
        "repro.api",
        "repro.ingest",
        "repro.serve",
        "repro.strings.qgram",
        "repro.strings.signatures",
        # Compact postings feed the same bit-identical results as the
        # dict encoding — their construction order is contractual.
        "repro.compact",
    )

    #: Known set-returning methods of the index/API surface — the
    #: type-inference seed for RPR005 (pure AST analysis cannot see
    #: return annotations across modules).
    set_returning_methods: frozenset[str] = frozenset(
        {
            "occurrences",
            "objects_with_key",
            "objects_with_similar",
            "block_members",
            "od_terms",
            "block_keys",
        }
    )

    #: Where RPR002 points violators for a process-stable hash.
    stable_hash_hint: str = "repro.engine.sharder.stable_hash"


#: The default binding for this repository.
DEFAULT_CONFIG = LintConfig()
