"""RPR001 — live containers must not escape shared classes.

The invariant (learned in PRs 1 and 6): classes whose instances are
read concurrently — the frozen ``CorpusIndex`` behind lock-free
``match()``, the session, the serve registry — must hand out
*snapshots*, never their live internal lists/dicts/sets or dict views.
A leaked live container lets any caller mutate shared state without a
lock (``similar_values()`` returning its memo list, PR 6) or observe a
structure mid-mutation (``block_terms()`` returning a ``.keys()`` view
a concurrent ``extend()`` grows — exactly the PR 6 bug class).

Pattern: a public method (or property) of a configured shared class
returning ``self._x`` where ``_x`` is a known container attribute,
returning any ``self.*.keys()/.values()/.items()`` mapping view, or
returning ``memoryview(self._x)`` — a zero-copy window onto a live
buffer (the compact encoding's ``array`` postings) that tracks, and
for writable buffers permits, mutation of internal state.  The fix is
a ``tuple(...)``/``frozenset(...)``/``bytes(...)`` snapshot at the
boundary.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..base import (
    Rule,
    VIEW_METHODS,
    container_attributes,
    methods,
    register,
    self_attr,
    walk_method,
)
from ..context import FileContext
from ..findings import Finding


@register
class LiveContainerEscape(Rule):
    code = "RPR001"
    name = "live-container-escape"
    summary = (
        "public methods of thread-shared classes must return snapshots, "
        "not live internal containers or dict views"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for classdef in ctx.classes():
            if classdef.name not in ctx.config.shared_classes:
                continue
            containers = container_attributes(classdef)
            for method in methods(classdef):
                if method.name.startswith("_"):
                    continue  # private surface may hand out live state
                for node in walk_method(method):
                    if not isinstance(node, ast.Return) or node.value is None:
                        continue
                    message = self._escape_message(node.value, containers)
                    if message is not None:
                        yield self.finding(
                            ctx,
                            node,
                            message,
                            symbol=f"{classdef.name}.{method.name}",
                        )

    def _escape_message(
        self, value: ast.AST, containers: frozenset[str]
    ) -> Optional[str]:
        attr = self_attr(value)
        if attr is not None and attr.startswith("_") and attr in containers:
            return (
                f"live container attribute self.{attr} escapes a shared "
                "class; return a tuple/frozenset snapshot (callers must "
                "not be able to mutate — or watch mutation of — internal "
                "state)"
            )
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in VIEW_METHODS
            and not value.args
        ):
            owner = self_attr(value.func.value)
            if owner is not None:
                return (
                    f"live dict view self.{owner}.{value.func.attr}() "
                    "escapes a shared class; views track mutation and "
                    "break iterating readers during extend() — snapshot "
                    "with tuple(...) instead"
                )
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "memoryview"
            and len(value.args) == 1
        ):
            owner = self_attr(value.args[0])
            if owner is not None and owner.startswith("_"):
                return (
                    f"memoryview over self.{owner} escapes a shared "
                    "class; a view is a live window onto the buffer "
                    "(writable for array/bytearray) — return "
                    "bytes(...)/tuple(...) or hand out items instead"
                )
        return None
