"""RPR003 — frozen-index discipline: mutation only via sanctioned writers.

The invariant (established in PR 6): the standing ``CorpusIndex`` is
pinned read-only after build (``freeze()``/``thaw()``), so the serve
layer's ``match()`` runs lock-free across reader threads.  That only
holds if *every* structural mutation funnels through the sanctioned
writer set — construction, ``merge_partial`` (which asserts
mutability), and the pin itself.  A new method that assigns or mutates
index state directly would silently reopen the race ``freeze()``
exists to make impossible.

Pattern: inside a configured frozen class, an assignment/augmented
assignment/delete targeting ``self.X`` (or ``self.X[...]``), or a call
of a container mutator on ``self.X``, in a method outside
``frozen_writers``.  Memo-cache attributes (``frozen_memo_attrs``) are
exempt: their entries are idempotent per-key values computed from
frozen state (see ``CorpusIndex.freeze``).  Sanctioned writers other
than ``__init__``/``freeze``/``thaw`` must themselves reference
``self._frozen`` — a writer that forgets the mutability assertion is
also a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..base import (
    CONTAINER_MUTATORS,
    Rule,
    methods,
    references_attr,
    register,
    self_attr,
    walk_method,
)
from ..context import FileContext
from ..findings import Finding

#: Writers that need no ``_frozen`` assertion: the object is not yet
#: shared (construction) or the mutation *is* the pin.
_ASSERTION_EXEMPT = frozenset({"__init__", "__post_init__", "freeze", "thaw"})


@register
class FrozenIndexDiscipline(Rule):
    code = "RPR003"
    name = "frozen-index-discipline"
    summary = (
        "frozen-class state mutates only inside the sanctioned writer "
        "set, and writers must assert mutability"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for classdef in ctx.classes():
            if classdef.name not in ctx.config.frozen_classes:
                continue
            for method in methods(classdef):
                mutations = [
                    (node, attr)
                    for node in walk_method(method)
                    for attr in [self._mutated_attr(node, ctx)]
                    if attr is not None
                ]
                if not mutations:
                    continue
                symbol = f"{classdef.name}.{method.name}"
                if method.name not in ctx.config.frozen_writers:
                    for node, attr in mutations:
                        yield self.finding(
                            ctx,
                            node,
                            f"self.{attr} mutates outside the sanctioned "
                            "writer set "
                            f"({', '.join(sorted(ctx.config.frozen_writers))}); "
                            "frozen-class state must stay read-only after "
                            "build — route the mutation through a "
                            "sanctioned writer or extend the writer set "
                            "deliberately",
                            symbol=symbol,
                        )
                elif method.name not in _ASSERTION_EXEMPT and not references_attr(
                    method, "_frozen"
                ):
                    yield self.finding(
                        ctx,
                        method,
                        "sanctioned writer never references self._frozen; "
                        "writers must assert mutability so a frozen "
                        "instance fails loudly instead of racing readers",
                        symbol=symbol,
                    )

    def _mutated_attr(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[str]:
        """The non-exempt ``self`` attribute this node mutates, if any."""
        attr: Optional[str] = None
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = attr or self._target_attr(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            attr = self._target_attr(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = attr or self._target_attr(target)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in CONTAINER_MUTATORS
        ):
            attr = self._target_attr(node.func.value)
        if attr is not None and attr in ctx.config.frozen_memo_attrs:
            return None
        return attr

    @staticmethod
    def _target_attr(node: ast.AST) -> Optional[str]:
        """``self.X`` or ``self.X[...]`` -> ``X``."""
        if isinstance(node, ast.Subscript):
            node = node.value
        return self_attr(node)
