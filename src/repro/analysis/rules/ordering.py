"""RPR005 — set iteration must not feed ordered output in parity modules.

The invariant (the paper-reproduction contract every PR is pinned by):
detection results, serialized documents, and decision sequences are
**bit-identical** across serial/process/shard backends and worker
counts.  Python sets iterate in hash order, which varies per process
(string hash randomization) — so materializing a set directly into a
list/tuple/joined string inside a parity-critical module bakes
per-process order into output that must be deterministic.  Every
producer sorts first (``sorted(...)``), which is why the pipeline's
canonical pair order works at all.

Pattern: in a configured parity module, a set-typed expression (set
literals/comprehensions, ``set()``/``frozenset()`` calls, variables
assigned from those, unions of them, and the index's known
set-returning methods) appearing directly as the iterable of
``list()``/``tuple()``/``enumerate()``/``str.join()`` or of a list
comprehension.  Folding a set into another set, membership tests, and
``sorted(...)`` stay quiet — order-insensitive consumption is the
point of using sets.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..base import Rule, register, unparse
from ..context import FileContext
from ..findings import Finding

_ORDERED_CALLS = frozenset({"list", "tuple", "enumerate"})
_SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet", "AbstractSet"})


@register
class NondeterministicOrdering(Rule):
    code = "RPR005"
    name = "nondeterministic-set-ordering"
    summary = (
        "parity-critical modules must sorted() set iteration before it "
        "reaches ordered results or serialized output"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_parity_module():
            return
        # Scopes: the module itself plus every function (nested walks
        # stay inside their defining function's scope approximation).
        scopes: list[ast.AST] = [ctx.tree]
        scopes.extend(
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        seen: set[int] = set()
        for scope in scopes:
            set_vars = self._set_variables(scope, ctx)
            for node in ast.walk(scope):
                sink = self._ordered_sink(node, set_vars, ctx)
                if sink is None or id(node) in seen:
                    continue
                seen.add(id(node))
                yield self.finding(
                    ctx,
                    node,
                    f"set iteration ({unparse(sink)}) feeds an ordered "
                    "collection in a parity-critical module: set order "
                    "varies per process and breaks bit-identical "
                    "results — wrap the set in sorted(...) first",
                )

    # ------------------------------------------------------------------
    def _set_variables(self, scope: ast.AST, ctx: FileContext) -> set[str]:
        """Names assigned set-typed values anywhere in this scope."""
        names: set[str] = set()
        # Two passes so a var assigned from another set var resolves.
        for _ in range(2):
            for node in ast.walk(scope):
                if isinstance(node, ast.Assign) and self._is_set_expr(
                    node.value, names, ctx
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    annotation = node.annotation
                    base = annotation.value if isinstance(
                        annotation, ast.Subscript
                    ) else annotation
                    base_name = (
                        base.id
                        if isinstance(base, ast.Name)
                        else base.attr
                        if isinstance(base, ast.Attribute)
                        else None
                    )
                    if base_name in _SET_ANNOTATIONS:
                        names.add(node.target.id)
        return names

    def _is_set_expr(
        self, node: ast.AST, set_vars: set[str], ctx: FileContext
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_vars
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set",
                "frozenset",
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ctx.config.set_returning_methods
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left, set_vars, ctx) or self._is_set_expr(
                node.right, set_vars, ctx
            )
        return False

    def _ordered_sink(
        self, node: ast.AST, set_vars: set[str], ctx: FileContext
    ) -> Optional[ast.AST]:
        """The set-typed expression this node materializes in order."""
        if isinstance(node, ast.Call):
            callee: Optional[str] = None
            if isinstance(node.func, ast.Name) and node.func.id in _ORDERED_CALLS:
                callee = node.func.id
            elif (
                isinstance(node.func, ast.Attribute) and node.func.attr == "join"
            ):
                callee = "join"
            if callee and node.args:
                iterable = node.args[0]
                # ``list(x for x in S)`` — look through the genexp.
                if isinstance(iterable, ast.GeneratorExp):
                    iterable = iterable.generators[0].iter
                if self._is_set_expr(iterable, set_vars, ctx):
                    return iterable
        elif isinstance(node, ast.ListComp):
            iterable = node.generators[0].iter
            if self._is_set_expr(iterable, set_vars, ctx):
                return iterable
        return None
