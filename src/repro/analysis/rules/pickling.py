"""RPR006 — pool payloads must be picklable module-level callables.

The invariant (enforced operationally since PR 1): everything submitted
to the multiprocessing pool — worker functions, initializers, and
their arguments — crosses a process boundary by pickle.  Lambdas and
closures do not pickle; bound methods drag their whole instance (for a
session or OD that means XML elements) into every task payload.  The
executor's runtime guard (``_picklable``) degrades such runs to the
serial backend *silently*, so the mistake costs all parallelism
without failing a single test — exactly the kind of regression a
static check catches and a load test does not.

Pattern: a call of a pool-submission method (``submit``/``map``/
``imap``/``imap_unordered``/``starmap``/``apply``/``apply_async`` on a
receiver whose name mentions pool/executor, or a ``Pool(...)``
constructor's ``initializer=``) whose function payload is a lambda, a
function defined inside another function (a closure), or a
``self.<method>`` bound method — plus any lambda appearing anywhere in
the submission's arguments (e.g. inside ``initargs``).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ..base import Rule, register, unparse
from ..context import FileContext
from ..findings import Finding

_POOL_METHODS = frozenset(
    {"submit", "map", "imap", "imap_unordered", "starmap", "apply", "apply_async"}
)
_POOL_NAME = re.compile(r"(?i)pool|executor")


@register
class UnpicklablePoolPayload(Rule):
    code = "RPR006"
    name = "unpicklable-pool-payload"
    summary = (
        "pool payloads must be module-level callables: lambdas/closures "
        "do not pickle, bound methods ship the whole instance"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        nested = self._nested_function_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            payloads: list[tuple[ast.AST, str]] = []
            if self._is_pool_submission(node):
                if node.args:
                    payloads.append((node.args[0], "worker function"))
                for keyword in node.keywords:
                    if keyword.arg in ("func", "initializer"):
                        payloads.append((keyword.value, keyword.arg))
            elif self._is_pool_constructor(node):
                for keyword in node.keywords:
                    if keyword.arg == "initializer":
                        payloads.append((keyword.value, "initializer"))
            else:
                continue
            flagged: set[int] = set()
            for payload, role in payloads:
                message = self._payload_problem(payload, role, nested)
                if message is not None:
                    flagged.add(id(payload))
                    yield self.finding(ctx, payload, message)
            # Lambdas hiding anywhere else in the submission (initargs
            # tuples, chunk sizes computed lazily, ...).
            for child in ast.walk(node):
                if isinstance(child, ast.Lambda) and id(child) not in flagged:
                    yield self.finding(
                        ctx,
                        child,
                        "lambda inside a pool submission cannot pickle "
                        "across the process boundary; hoist it to a "
                        "module-level function",
                    )

    # ------------------------------------------------------------------
    @staticmethod
    def _is_pool_submission(node: ast.Call) -> bool:
        return (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _POOL_METHODS
            and _POOL_NAME.search(unparse(node.func.value)) is not None
        )

    @staticmethod
    def _is_pool_constructor(node: ast.Call) -> bool:
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        return name.endswith("Pool") or name.endswith("Executor")

    @staticmethod
    def _nested_function_names(tree: ast.AST) -> frozenset[str]:
        """Names of functions defined inside other functions (closures)."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for child in ast.walk(node):
                if child is node:
                    continue
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(child.name)
        return frozenset(names)

    def _payload_problem(
        self, payload: ast.AST, role: str, nested: frozenset[str]
    ) -> Optional[str]:
        if isinstance(payload, ast.Lambda):
            return (
                f"lambda as pool {role} cannot pickle across the process "
                "boundary (the executor silently degrades to serial); "
                "use a module-level function"
            )
        if isinstance(payload, ast.Name) and payload.id in nested:
            return (
                f"nested function {payload.id!r} as pool {role} is a "
                "closure and cannot pickle; hoist it to module level"
            )
        if (
            isinstance(payload, ast.Attribute)
            and isinstance(payload.value, ast.Name)
            and payload.value.id == "self"
        ):
            return (
                f"bound method self.{payload.attr} as pool {role} pickles "
                "the entire instance into every task (sessions/ODs carry "
                "XML elements); use a module-level function over "
                "element-stripped payloads"
            )
        return None
