"""The invariant rules, one module per PR-discovered contract.

Importing this package registers every rule with
:data:`repro.analysis.base.RULES`:

* ``RPR001`` live-container escape            (PRs 1, 6)
* ``RPR002`` process-randomized ``hash()``    (PR 3)
* ``RPR003`` frozen-index discipline          (PR 6)
* ``RPR004`` non-atomic read-modify-write     (PR 6)
* ``RPR005`` nondeterministic set ordering    (parity contract, all PRs)
* ``RPR006`` unpicklable pool payloads        (PRs 1, 5)
"""

from . import atomic, containers, frozen, hashing, ordering, pickling  # noqa: F401

from ..base import RULES, all_rules

__all__ = ["RULES", "all_rules"]
