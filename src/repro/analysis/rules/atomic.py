"""RPR004 — read-modify-write on shared state needs a lock (or a pragma).

The invariant (learned in PR 6): ``self.x += 1`` and
``self.x = self.x + ...`` are not atomic — the interpreter reads,
computes, and writes in separate bytecodes, so two threads interleaving
on a shared instance lose updates.  The foreign-sentinel-id allocator
was exactly this bug: two concurrent ``match(element)`` calls drew the
same id and conflated per-id filter memos.

Pattern: inside a configured shared class, an augmented assignment on
``self.X``/``self.X[...]``, or a plain assignment whose right-hand side
reads the same ``self.X``, lexically outside every ``with <lock>``
block.  "Lock-like" context managers are recognized by name
(``lock``/``cond``/``gate``/``mutex``, case-insensitive).
Constructors are exempt — the instance is not shared yet.  Deliberate
exceptions (informational counters whose lost increments are
acceptable, methods serialized by an *external* writer lock) carry
``# repro: allow[RPR004]`` with a one-line justification.

A second pattern covers the *check-then-act* shape that slipped past
the first: a method reads ``self.X`` (``self.X.get(...)``, ``k in
self.X``, ``self.X[...]``), later publishes ``self.X[...] = value``,
and also mutates a *second* attribute (``self.Y.append(...)`` and
friends) — all outside a lock.  Two threads passing the check together
both publish and both run the side effect, so the companion container
double-records (the ``ObjectFilter.decide`` race: one decision per
object in the memo, but two in ``decisions``).  Memo-only publication
with no companion side effect stays quiet — racing writers of an
idempotent cache merely waste work.  The fix shape: publish via
``dict.setdefault`` and run side effects only when the published value
won.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ..base import Rule, methods, register, self_attr, unparse, walk_method
from ..context import FileContext, ancestors
from ..findings import Finding

_LOCK_NAME = re.compile(r"(?i)lock|cond|gate|mutex|sem")
_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})
#: In-place mutators that make a check-then-act publish observable: a
#: losing racer that also runs one of these double-records somewhere.
_CHECK_THEN_ACT_MUTATORS = frozenset(
    {"add", "append", "extend", "insert", "update"}
)


@register
class NonAtomicReadModifyWrite(Rule):
    code = "RPR004"
    name = "non-atomic-read-modify-write"
    summary = (
        "read-modify-write on thread-shared attributes must hold a "
        "lock (+= is not atomic)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for classdef in ctx.classes():
            if classdef.name not in ctx.config.shared_classes:
                continue
            for method in methods(classdef):
                if method.name in _CONSTRUCTORS:
                    continue  # not shared until construction returns
                for node in walk_method(method):
                    attr = self._rmw_attr(node)
                    if attr is None or self._under_lock(node):
                        continue
                    yield self.finding(
                        ctx,
                        node,
                        f"read-modify-write on shared attribute "
                        f"self.{attr} outside a lock: two threads "
                        "interleaving here lose an update (the PR 6 "
                        "sentinel-id race); hold the owning lock, use an "
                        "atomic primitive (itertools.count), or annotate "
                        "why the race is benign",
                        symbol=f"{classdef.name}.{method.name}",
                    )
                yield from self._check_then_act(ctx, classdef, method)

    def _check_then_act(
        self, ctx: FileContext, classdef: ast.ClassDef, method: ast.FunctionDef
    ) -> Iterator[Finding]:
        """Unlocked check of ``self.X`` -> ``self.X[...] = v`` publish,
        with a companion mutation of another attribute (see module
        docstring)."""
        checks: dict[str, int] = {}
        mutated: set[str] = set()
        publishes: list[tuple[ast.Assign, str]] = []
        for node in walk_method(method):
            if self._under_lock(node):
                continue
            checked = self._checked_attr(node)
            if checked is not None:
                checks[checked] = min(
                    checks.get(checked, node.lineno), node.lineno
                )
            if isinstance(node, ast.Call):
                receiver = self._mutator_receiver(node)
                if receiver is not None:
                    mutated.add(receiver)
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Subscript)
            ):
                attr = self_attr(node.targets[0].value)
                if attr is not None:
                    publishes.append((node, attr))
        for node, attr in publishes:
            if checks.get(attr, node.lineno) >= node.lineno:
                continue  # no earlier unlocked check of the same attr
            if not (mutated - {attr}):
                continue  # idempotent memo publication: benign race
            companions = ", ".join(sorted(mutated - {attr}))
            yield self.finding(
                ctx,
                node,
                f"check-then-act on shared attribute self.{attr} "
                f"outside a lock: two threads passing the earlier "
                f"check both publish self.{attr}[...] and both run "
                f"the companion mutation of self.{companions}, "
                "double-recording (the ObjectFilter.decide race); "
                f"publish via self.{attr}.setdefault(...) and run "
                "side effects only on the winning entry, hold the "
                "owning lock, or annotate why the race is benign",
                symbol=f"{classdef.name}.{method.name}",
            )

    @staticmethod
    def _checked_attr(node: ast.AST) -> Optional[str]:
        """The ``self`` attribute this expression *checks*, if any:
        ``self.X.get(...)``, ``k in self.X``, or a read of
        ``self.X[...]``."""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
        ):
            return self_attr(node.func.value)
        if (
            isinstance(node, ast.Compare)
            and len(node.ops) == 1
            and isinstance(node.ops[0], (ast.In, ast.NotIn))
        ):
            return self_attr(node.comparators[0])
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            return self_attr(node.value)
        return None

    @staticmethod
    def _mutator_receiver(node: ast.Call) -> Optional[str]:
        """``self.Y.append(...)`` (also through ``self.Y[k].append``)
        -> ``"Y"``."""
        func = node.func
        if (
            not isinstance(func, ast.Attribute)
            or func.attr not in _CHECK_THEN_ACT_MUTATORS
        ):
            return None
        receiver = func.value
        if isinstance(receiver, ast.Subscript):
            receiver = receiver.value
        return self_attr(receiver)

    @staticmethod
    def _rmw_attr(node: ast.AST) -> Optional[str]:
        """The ``self`` attribute this statement RMWs, if any."""
        if isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Subscript):
                target = target.value
            return self_attr(target)
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            attr = self_attr(node.targets[0])
            if attr is not None and any(
                self_attr(sub) == attr for sub in ast.walk(node.value)
            ):
                return attr
        return None

    @staticmethod
    def _under_lock(node: ast.AST) -> bool:
        for ancestor in ancestors(node):
            if not isinstance(ancestor, (ast.With, ast.AsyncWith)):
                continue
            for item in ancestor.items:
                if _LOCK_NAME.search(unparse(item.context_expr)):
                    return True
        return False
