"""RPR004 — read-modify-write on shared state needs a lock (or a pragma).

The invariant (learned in PR 6): ``self.x += 1`` and
``self.x = self.x + ...`` are not atomic — the interpreter reads,
computes, and writes in separate bytecodes, so two threads interleaving
on a shared instance lose updates.  The foreign-sentinel-id allocator
was exactly this bug: two concurrent ``match(element)`` calls drew the
same id and conflated per-id filter memos.

Pattern: inside a configured shared class, an augmented assignment on
``self.X``/``self.X[...]``, or a plain assignment whose right-hand side
reads the same ``self.X``, lexically outside every ``with <lock>``
block.  "Lock-like" context managers are recognized by name
(``lock``/``cond``/``gate``/``mutex``, case-insensitive).
Constructors are exempt — the instance is not shared yet.  Deliberate
exceptions (informational counters whose lost increments are
acceptable, methods serialized by an *external* writer lock) carry
``# repro: allow[RPR004]`` with a one-line justification.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ..base import Rule, methods, register, self_attr, unparse, walk_method
from ..context import FileContext, ancestors
from ..findings import Finding

_LOCK_NAME = re.compile(r"(?i)lock|cond|gate|mutex|sem")
_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})


@register
class NonAtomicReadModifyWrite(Rule):
    code = "RPR004"
    name = "non-atomic-read-modify-write"
    summary = (
        "read-modify-write on thread-shared attributes must hold a "
        "lock (+= is not atomic)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for classdef in ctx.classes():
            if classdef.name not in ctx.config.shared_classes:
                continue
            for method in methods(classdef):
                if method.name in _CONSTRUCTORS:
                    continue  # not shared until construction returns
                for node in walk_method(method):
                    attr = self._rmw_attr(node)
                    if attr is None or self._under_lock(node):
                        continue
                    yield self.finding(
                        ctx,
                        node,
                        f"read-modify-write on shared attribute "
                        f"self.{attr} outside a lock: two threads "
                        "interleaving here lose an update (the PR 6 "
                        "sentinel-id race); hold the owning lock, use an "
                        "atomic primitive (itertools.count), or annotate "
                        "why the race is benign",
                        symbol=f"{classdef.name}.{method.name}",
                    )

    @staticmethod
    def _rmw_attr(node: ast.AST) -> Optional[str]:
        """The ``self`` attribute this statement RMWs, if any."""
        if isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Subscript):
                target = target.value
            return self_attr(target)
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            attr = self_attr(node.targets[0])
            if attr is not None and any(
                self_attr(sub) == attr for sub in ast.walk(node.value)
            ):
                return attr
        return None

    @staticmethod
    def _under_lock(node: ast.AST) -> bool:
        for ancestor in ancestors(node):
            if not isinstance(ancestor, (ast.With, ast.AsyncWith)):
                continue
            for item in ancestor.items:
                if _LOCK_NAME.search(unparse(item.context_expr)):
                    return True
        return False
