"""RPR002 — builtin ``hash()`` is per-process randomized.

The invariant (learned in PR 3): shard assignment, pair ownership, and
any other cross-worker agreement must hash with
``repro.engine.sharder.stable_hash`` (CRC-32 over ``repr``) — CPython
seeds string hashing per interpreter, so two pool workers computing
``hash("title")`` disagree, silently scattering blocks differently in
every process and breaking bit-identical parity in ways that only
appear under ``workers > 1``.

Pattern: any call of the builtin ``hash`` outside a ``__hash__``
definition (implementing ``__hash__`` in terms of ``hash()`` is the
sanctioned intra-process use).  A deliberate process-local use gets a
``# repro: allow[RPR002]`` pragma with its justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Rule, register
from ..context import FileContext, enclosing
from ..findings import Finding


@register
class BuiltinHash(Rule):
    code = "RPR002"
    name = "process-randomized-hash"
    summary = (
        "builtin hash() is randomized per process; cross-worker "
        "agreement must use engine.sharder.stable_hash"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                continue
            function = enclosing(node, ast.FunctionDef, ast.AsyncFunctionDef)
            if function is not None and function.name == "__hash__":
                continue  # the one sanctioned intra-process use
            yield self.finding(
                ctx,
                node,
                "builtin hash() is seeded per interpreter and cannot "
                "agree across worker processes; use "
                f"{ctx.config.stable_hash_hint} (or annotate a deliberate "
                "process-local use)",
            )
