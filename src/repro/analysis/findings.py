"""Finding values the invariant checker reports.

A finding is one violation of a codebase contract at one source
location.  Codes are stable identifiers (``RPR0xx``) so suppressions
(``# repro: allow[RPR0xx]``), reporters, and CI greps can refer to a
rule without depending on its message text.

Reserved codes outside the rule registry:

* ``RPR000`` — a suppression pragma that suppressed nothing (stale
  ``allow`` comments must not accumulate and silently blanket future
  violations);
* ``RPR900`` — a file the checker could not parse (a syntax error is a
  finding, not a crash: the lint gate must fail, not pass vacuously).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Meta-code: an ``allow`` pragma whose codes suppressed no finding.
UNUSED_SUPPRESSION = "RPR000"
#: Meta-code: the file could not be parsed at all.
PARSE_ERROR = "RPR900"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is (path, line, col, code) so reports are deterministic
    regardless of rule execution order — the checker's own output is
    held to the determinism contract it enforces.
    """

    path: str
    line: int
    col: int
    code: str
    message: str = field(compare=False)
    #: Dotted location (``Class.method``) when the rule knows it.
    symbol: str = field(default="", compare=False)

    def render(self) -> str:
        """The canonical one-line text form."""
        where = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}{where}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "symbol": self.symbol,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            code=str(data["code"]),
            message=str(data["message"]),
            symbol=str(data.get("symbol", "")),
        )
