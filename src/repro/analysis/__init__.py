"""Invariant lint: the codebase's concurrency/determinism contracts as code.

PRs 1-6 each paid for the same bug classes by hand: live memoized
containers escaping shared readers, racy read-modify-writes on session
state, per-process-randomized ``hash()`` breaking cross-worker
determinism, and index mutation outside the freeze/writer-lock
discipline.  This package checks those invariants *statically* — a
custom AST pass over ``src/`` (stdlib ``ast`` only, no new
dependencies) gating CI and the tier-1 suite, so the contracts hold in
every future PR instead of being rediscovered under load.

Entry points::

    python -m repro.cli lint src/              # text report, exit 0/1
    python -m repro.cli lint src/ --format json

    from repro.analysis import lint_paths
    result = lint_paths(["src"])
    assert result.clean

Deliberate exceptions annotate in place::

    self.probes += 1  # repro: allow[RPR004] informational counter

Unused pragmas are themselves findings (``RPR000``); each rule module
under :mod:`repro.analysis.rules` documents the invariant it encodes
and the PR that learned it.  See ROADMAP "Static analysis &
invariants" for the code-to-contract map.
"""

from .base import RULES, Rule, all_rules, register
from .checker import LintResult, iter_python_files, lint_file, lint_paths, lint_source
from .config import DEFAULT_CONFIG, LintConfig
from .context import FileContext, Suppression, parse_suppressions
from .findings import Finding, PARSE_ERROR, UNUSED_SUPPRESSION
from .reporters import (
    JSON_FORMAT_VERSION,
    render_json,
    render_text,
    result_from_json,
    result_to_dict,
)

__all__ = [
    "DEFAULT_CONFIG",
    "FileContext",
    "Finding",
    "JSON_FORMAT_VERSION",
    "LintConfig",
    "LintResult",
    "PARSE_ERROR",
    "RULES",
    "Rule",
    "Suppression",
    "UNUSED_SUPPRESSION",
    "all_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "register",
    "render_json",
    "render_text",
    "result_from_json",
    "result_to_dict",
]
