"""Text and JSON renderings of a :class:`~repro.analysis.checker.LintResult`.

The text form is the human/CI-log view (one canonical line per
finding, then a summary).  The JSON form is the machine view — a
versioned document CI uploads as an artifact; its schema round-trips
(``result_from_json(render_json(r))`` reconstructs the findings), which
``tests/test_analysis_checker.py`` pins.
"""

from __future__ import annotations

import json
from collections import Counter

from .checker import LintResult
from .findings import Finding

#: Bump when the JSON document layout changes (same policy as the
#: index store: readers treat unknown versions as unusable, never
#: migrate in place).
JSON_FORMAT_VERSION = 1


def render_text(result: LintResult, *, show_suppressed: bool = False) -> str:
    """One line per finding plus a summary (always non-empty)."""
    lines = [finding.render() for finding in result.findings]
    if show_suppressed:
        lines.extend(
            f"{finding.render()}  (suppressed)" for finding in result.suppressed
        )
    noun = "finding" if len(result.findings) == 1 else "findings"
    lines.append(
        f"{len(result.findings)} {noun} "
        f"({len(result.suppressed)} suppressed) in {result.files} file(s)"
    )
    return "\n".join(lines)


def result_to_dict(result: LintResult) -> dict[str, object]:
    counts = Counter(finding.code for finding in result.findings)
    return {
        "version": JSON_FORMAT_VERSION,
        "tool": "repro-lint",
        "files": result.files,
        "counts": dict(sorted(counts.items())),
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
    }


def render_json(result: LintResult) -> str:
    return json.dumps(result_to_dict(result), indent=2, sort_keys=True)


def result_from_json(text: str) -> LintResult:
    """Reconstruct a result from the JSON document (schema round trip)."""
    data = json.loads(text)
    version = data.get("version")
    if version != JSON_FORMAT_VERSION:
        raise ValueError(
            f"unsupported lint report version {version!r} "
            f"(this reader handles {JSON_FORMAT_VERSION})"
        )
    result = LintResult(files=int(data.get("files", 0)))
    result.findings = [Finding.from_dict(raw) for raw in data.get("findings", [])]
    result.suppressed = [
        Finding.from_dict(raw) for raw in data.get("suppressed", [])
    ]
    return result
