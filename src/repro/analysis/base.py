"""Rule base class, the rule registry, and shared AST predicates.

A rule is one invariant encoded as an AST pattern: it receives a
:class:`~repro.analysis.context.FileContext` and yields
:class:`~repro.analysis.findings.Finding` values.  Rules register by
decorating the class with :func:`register`; the checker runs every
registered rule unless given an explicit subset.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Type

from .context import FileContext
from .findings import Finding


class Rule:
    """One statically checkable invariant."""

    #: Stable finding code (``RPR0xx``).
    code: str = ""
    #: Short kebab-case rule name (shown in ``lint --rules``).
    name: str = ""
    #: One-line statement of the contract the rule encodes.
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str, symbol: str = ""
    ) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            symbol=symbol or ctx.qualname(node),
        )


#: code -> rule class, in registration order.
RULES: dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in code order."""
    return [RULES[code]() for code in sorted(RULES)]


# ----------------------------------------------------------------------
# Shared AST predicates
# ----------------------------------------------------------------------
def self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"``; anything else -> ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The called name: ``f(...)`` -> ``f``, ``a.b(...)`` -> ``b``."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


#: Constructor names whose result is a live mutable container.
#: ``array``/``bytearray`` joined with the compact index encoding:
#: flat posting buffers are as mutable as the dicts they replace.
CONTAINER_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "deque",
        "array",
        "bytearray",
    }
)

#: Mapping-view accessors — always a live window onto the dict.
VIEW_METHODS = frozenset({"keys", "values", "items"})

#: Method names that mutate a container in place.
CONTAINER_MUTATORS = frozenset(
    {
        "add",
        "append",
        "extend",
        "insert",
        "update",
        "clear",
        "pop",
        "popitem",
        "remove",
        "discard",
        "setdefault",
        "merge_from",
        "sort",
        "reverse",
    }
)


def is_container_expr(node: ast.AST) -> bool:
    """Does this expression build a mutable container?"""
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)
    ):
        return True
    if isinstance(node, ast.Call):
        return call_name(node) in CONTAINER_CALLS
    return False


def container_attributes(classdef: ast.ClassDef) -> frozenset[str]:
    """Instance attributes initialized to mutable containers.

    Sources of truth: ``self.X = <container>`` in ``__init__`` /
    ``__post_init__`` and dataclass fields declared with
    ``field(default_factory=<container>)`` or a container annotation's
    constructor call.  A pure-AST under-approximation — attributes
    bound from opaque calls stay unknown, which keeps the rule quiet
    rather than noisy.
    """
    attrs: set[str] = set()
    for statement in classdef.body:
        # Dataclass field: ``x: list[int] = field(default_factory=list)``
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.value, ast.Call
        ):
            if call_name(statement.value) == "field":
                for keyword in statement.value.keywords:
                    if (
                        keyword.arg == "default_factory"
                        and isinstance(keyword.value, ast.Name)
                        and keyword.value.id in CONTAINER_CALLS
                        and isinstance(statement.target, ast.Name)
                    ):
                        attrs.add(statement.target.id)
        if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if statement.name not in ("__init__", "__post_init__"):
            continue
        for node in ast.walk(statement):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    attr = self_attr(target)
                    if attr and is_container_expr(node.value):
                        attrs.add(attr)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                attr = self_attr(node.target)
                if attr and is_container_expr(node.value):
                    attrs.add(attr)
    return frozenset(attrs)


def methods(classdef: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for statement in classdef.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield statement  # type: ignore[misc]


def decorator_names(func: ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    for decorator in func.decorator_list:
        if isinstance(decorator, ast.Name):
            names.add(decorator.id)
        elif isinstance(decorator, ast.Attribute):
            names.add(decorator.attr)
        elif isinstance(decorator, ast.Call):
            name = call_name(decorator)
            if name:
                names.add(name)
    return names


def walk_method(method: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk a method's body without descending into nested classes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(method))
    while stack:
        node = stack.pop()
        if isinstance(node, ast.ClassDef):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def references_attr(tree: ast.AST, attr: str) -> bool:
    """Does any ``self.<attr>`` reference appear under ``tree``?"""
    return any(self_attr(node) == attr for node in ast.walk(tree))


def unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return "<expr>"


def iter_findings(rules: Iterable[Rule], ctx: FileContext) -> Iterator[Finding]:
    for rule in rules:
        yield from rule.check(ctx)
