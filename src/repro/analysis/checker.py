"""The checker: run rules over sources, apply suppressions, collect.

The flow per file: parse (a syntax error is itself a finding, code
``RPR900`` — the gate must fail, not pass vacuously), run every rule,
then split the raw findings into *active* and *suppressed* using the
``# repro: allow[RPR0xx]`` pragmas.  When the full registry ran, a
pragma that suppressed nothing becomes an ``RPR000`` finding — stale
allows must not accumulate and silently blanket future violations.
Unused-pragma detection is skipped for partial rule runs (fixture
tests exercising one rule would otherwise flag every other pragma).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from . import rules as _rules  # noqa: F401 - imports register the rules
from .base import Rule, all_rules
from .config import LintConfig
from .context import FileContext
from .findings import Finding, PARSE_ERROR, UNUSED_SUPPRESSION


@dataclass
class LintResult:
    """Outcome of one checker run (one or many files)."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def merge(self, other: "LintResult") -> "LintResult":
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files += other.files
        return self

    def sort(self) -> "LintResult":
        self.findings.sort()
        self.suppressed.sort()
        return self


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: Optional[str] = None,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Check one source string.

    ``rules=None`` runs the full registry (and enables unused-pragma
    detection); an explicit subset runs only those rules.
    """
    result = LintResult(files=1)
    try:
        ctx = FileContext.build(source, path=path, module=module, config=config)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                code=PARSE_ERROR,
                message=f"file does not parse: {exc.msg}",
            )
        )
        return result
    full_registry = rules is None
    active_rules: Iterable[Rule] = all_rules() if rules is None else rules
    raw: list[Finding] = []
    for rule in active_rules:
        raw.extend(rule.check(ctx))
    for finding in raw:
        suppression = ctx.suppressions.get(finding.line)
        if suppression is not None and finding.code in suppression.codes:
            suppression.used.add(finding.code)
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    if full_registry:
        for suppression in ctx.suppressions.values():
            for code in suppression.unused_codes():
                result.findings.append(
                    Finding(
                        path=path,
                        line=suppression.comment_line,
                        col=1,
                        code=UNUSED_SUPPRESSION,
                        message=(
                            f"suppression allow[{code}] matches no "
                            "finding on its line; remove the stale "
                            "pragma (it would silently blanket a future "
                            "violation)"
                        ),
                    )
                )
    return result.sort()


def lint_file(
    path: str,
    *,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, config=config, rules=rules)


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted, deduplicated file list.

    Sorted so reports (and finding order) are stable across platforms —
    the checker honors the determinism contract it enforces.
    """
    found: set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name for name in dirnames if name != "__pycache__"
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        found.add(os.path.join(dirpath, filename))
        elif path.endswith(".py"):
            found.add(path)
    return sorted(found)


def lint_paths(
    paths: Iterable[str],
    *,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Check every ``*.py`` under the given files/directories."""
    result = LintResult()
    for file_path in iter_python_files(paths):
        result.merge(lint_file(file_path, config=config, rules=rules))
    return result.sort()
