"""Per-file visitor context: parsed tree, parent links, suppressions.

Every rule receives one :class:`FileContext` per file.  The context
owns the parsed AST (with parent links attached, so rules can ask
"what class/function am I in?"), the dotted module name (so rules can
scope themselves to parity-critical modules), and the suppression
pragmas parsed from comments:

    self.probes += 1  # repro: allow[RPR004] informational counter

A pragma on its own line applies to the next code line; a trailing
pragma applies to its own line.  Multiple codes separate with commas.
Unused pragmas are themselves findings (``RPR000``) — see
:mod:`repro.analysis.checker`.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Iterator, Optional

from .config import DEFAULT_CONFIG, LintConfig

_PRAGMA = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")

#: Attribute used for parent back-links on AST nodes (set per tree by
#: :func:`attach_parents`; the leading underscore keeps it out of
#: ``ast.dump`` comparisons).
_PARENT = "_repro_parent"


@dataclass
class Suppression:
    """One ``# repro: allow[...]`` pragma, resolved to its target line."""

    #: The code line the pragma covers.
    line: int
    #: The line the comment itself is on (for unused-pragma reports).
    comment_line: int
    codes: tuple[str, ...] = ()
    #: Codes that actually suppressed a finding (filled by the checker).
    used: set[str] = field(default_factory=set)

    def unused_codes(self) -> tuple[str, ...]:
        return tuple(code for code in self.codes if code not in self.used)


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """Map of covered code line -> suppression.

    Trailing pragmas cover their own line.  A pragma on a comment-only
    line covers the next line holding a code token — so a pragma can
    sit above a long statement it annotates.
    """
    suppressions: dict[int, Suppression] = {}
    pending: list[Suppression] = []  # standalone pragmas awaiting code
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    code_lines = {
        token.start[0]
        for token in tokens
        if token.type
        not in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        )
    }
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(token.string)
        if not match:
            continue
        codes = tuple(
            sorted({part.strip() for part in match.group(1).split(",") if part.strip()})
        )
        if not codes:
            continue
        line = token.start[0]
        if line in code_lines:  # trailing comment: covers its own line
            _install(suppressions, Suppression(line, line, codes))
        else:  # standalone comment: covers the next code line
            pending.append(Suppression(-1, line, codes))
    for suppression in pending:
        targets = [line for line in code_lines if line > suppression.comment_line]
        if targets:
            suppression.line = min(targets)
        _install(suppressions, suppression)
    return suppressions


def _install(suppressions: dict[int, Suppression], new: Suppression) -> None:
    existing = suppressions.get(new.line)
    if existing is None:
        suppressions[new.line] = new
    else:  # merge codes; keep the earliest comment line for reports
        existing.codes = tuple(sorted(set(existing.codes) | set(new.codes)))
        existing.comment_line = min(existing.comment_line, new.comment_line)


# ----------------------------------------------------------------------
# AST navigation
# ----------------------------------------------------------------------
def attach_parents(tree: ast.AST) -> None:
    """Set a parent back-link on every node (rules walk upward a lot)."""
    for parent_node in ast.walk(tree):
        for child in ast.iter_child_nodes(parent_node):
            setattr(child, _PARENT, parent_node)


def parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, _PARENT, None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    current = parent(node)
    while current is not None:
        yield current
        current = parent(current)


def enclosing(node: ast.AST, *kinds: type) -> Optional[ast.AST]:
    """Nearest ancestor of one of the given node types."""
    for ancestor in ancestors(node):
        if isinstance(ancestor, kinds):
            return ancestor
    return None


def module_name_for(path: str) -> str:
    """Best-effort dotted module name (anchored at the ``repro`` package).

    Falls back to the file stem for sources outside the package, so
    fixture files still get a usable name.
    """
    parts = list(PurePath(path).with_suffix("").parts)
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<string>"


@dataclass
class FileContext:
    """Everything a rule may ask about the file under analysis."""

    path: str
    module: str
    source: str
    tree: ast.Module
    config: LintConfig
    suppressions: dict[int, Suppression]

    @classmethod
    def build(
        cls,
        source: str,
        *,
        path: str = "<string>",
        module: Optional[str] = None,
        config: Optional[LintConfig] = None,
    ) -> "FileContext":
        """Parse and index one file (raises ``SyntaxError`` as-is)."""
        tree = ast.parse(source, filename=path)
        attach_parents(tree)
        return cls(
            path=path,
            module=module if module is not None else module_name_for(path),
            source=source,
            tree=tree,
            config=config or DEFAULT_CONFIG,
            suppressions=parse_suppressions(source),
        )

    # ------------------------------------------------------------------
    def classes(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node

    def in_parity_module(self) -> bool:
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in self.config.parity_modules
        )

    def qualname(self, node: ast.AST) -> str:
        """Dotted ``Class.method`` location of a node (may be empty)."""
        names: list[str] = []
        chain: list[ast.AST] = [node, *ancestors(node)]
        for item in chain:
            if isinstance(
                item, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.append(item.name)
        return ".".join(reversed(names))
