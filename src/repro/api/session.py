"""DetectionSession: a prepared, reusable detection run.

The one-shot ``DogmatiX(config).run(...)`` rebuilds schema inference,
object descriptions, the :class:`~repro.core.index.CorpusIndex`, and
the classifier on every call.  A session builds them **once** per
``(corpus, mapping, real-world type, config)`` and then answers many
questions against the standing structures:

* :meth:`DetectionSession.detect` — a full batch run through the
  execution engine (bit-identical to the one-shot call), optionally at
  an overridden ``theta_cand`` so threshold sweeps amortize the index;
* :meth:`DetectionSession.match` — single-object duplicate lookup: the
  partners a full ``detect()`` would report for that object, found via
  the index's similar-value groups instead of a corpus-wide pass;
* :meth:`DetectionSession.extend` — incremental ingestion of a new
  source, clustered against prime representatives
  (:class:`~repro.framework.incremental.IncrementalDeduplicator`, the
  merge/purge adaptation the paper plans to adopt);
* :meth:`DetectionSession.explain` — an :class:`Explanation` value per
  pair, replacing the mutable ``last_*`` attributes of the old API.

The session is the seam future sharding/caching work plugs into: the
index, similarity, and classifier are built in one place and shared by
every entry point.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from ..core import DogmatixConfig, Source
from ..core.dogmatix import DogmatixClassifierFactory, DogmatixShardFactory
from ..core.index import CorpusIndex, IndexPartial
from ..core.object_filter import ObjectFilter
from ..core.similarity import DogmatixSimilarity
from ..engine import ExecutionPolicy, ShardedPairSource
from ..framework import (
    CandidateDefinition,
    DescriptionDefinition,
    DetectionPipeline,
    DetectionResult,
    IncrementalDeduplicator,
    ObjectDescription,
    ObjectFilterPruning,
    SharedTupleBlocking,
    ThresholdClassifier,
    TypeMapping,
)
from ..xmlkit import Element, strip_positions
from .corpus import Corpus, SourceLike

#: Distinct theta_cand values whose filter kept-sets a session memoizes
#: (LRU).  Small on purpose: a serving sweep touches a handful of
#: thresholds; an adversarial client scanning thetas must not grow
#: session memory without bound.
_KEPT_CACHE_SIZE = 8


@dataclass(frozen=True)
class Match:
    """One duplicate partner found by :meth:`DetectionSession.match`."""

    object_id: int
    similarity: float
    path: str


@dataclass(frozen=True)
class Explanation:
    """Why one pair scored the way it did (immutable snapshot).

    Replaces the old mutable ``last_similarity``-and-poke-at-it
    introspection: every field is computed at call time from the
    session's standing index.
    """

    left: int
    right: int
    similarity: float
    similar_pairs: tuple[tuple[str, str], ...]
    contradictory_pairs: tuple[tuple[str, str], ...]
    non_specified_left: tuple[str, ...]
    non_specified_right: tuple[str, ...]
    set_soft_idf_similar: float
    set_soft_idf_contradictory: float

    def lines(self) -> list[str]:
        """Human-readable breakdown (one string per line)."""
        out = [f"similarity({self.left}, {self.right}) = {self.similarity:.3f}"]
        for a, b in self.similar_pairs:
            out.append(f"  similar:        {a}  ~  {b}")
        for a, b in self.contradictory_pairs:
            out.append(f"  contradictory:  {a}  vs  {b}")
        for t in self.non_specified_left:
            out.append(f"  non-specified (left only, no penalty): {t}")
        for t in self.non_specified_right:
            out.append(f"  non-specified (right only, no penalty): {t}")
        return out


@dataclass(frozen=True)
class IncrementalUpdate:
    """Result of one :meth:`DetectionSession.extend` call."""

    added: tuple[ObjectDescription, ...]
    #: ``(object_id, cluster_index)`` per added object, in stream order.
    assignments: tuple[tuple[int, int], ...]
    #: All clusters with >= 2 members after this update.
    duplicate_clusters: tuple[tuple[int, ...], ...]


class DetectionSession:
    """A detection run prepared once and queried many times.

    Parameters
    ----------
    corpus:
        A :class:`Corpus`, or anything a corpus accepts (a source, a
        document, or a sequence of either).
    mapping:
        The real-world type mapping *M*.
    real_world_type:
        The candidate type to deduplicate.
    config:
        All DogmatiX knobs; defaults to the paper configuration.  With
        ``config.execution.ingest_workers > 1`` steps 1-3 and index
        construction run through the parallel ingest subsystem
        (:class:`repro.ingest.ParallelIngestor`) — same ODs, same ids,
        observably identical index.
    ods / index:
        Externally prepared candidate set and (optionally) a prebuilt
        index over exactly those ODs — the handshake the parallel
        ingestor and the snapshot store use; ``index`` without ``ods``
        is rejected.
    """

    def __init__(
        self,
        corpus: Union[Corpus, SourceLike, Iterable[SourceLike]],
        mapping: TypeMapping,
        real_world_type: str,
        config: Optional[DogmatixConfig] = None,
        *,
        ods: Optional[Sequence[ObjectDescription]] = None,
        index: Optional[CorpusIndex] = None,
    ) -> None:
        if index is not None and ods is None:
            raise ValueError("a prebuilt index requires the ods it describes")
        self.corpus = corpus if isinstance(corpus, Corpus) else Corpus(corpus)
        self.mapping = mapping
        self.real_world_type = real_world_type
        self.config = config or DogmatixConfig()
        if ods is not None:
            self._ods: list[ObjectDescription] = list(ods)
        elif self.config.execution.ingest_workers > 1:
            from ..ingest.builder import ParallelIngestor

            ingestor = ParallelIngestor(self.config.execution.ingest_workers)
            self._ods, index = ingestor.build(
                self.corpus, mapping, real_world_type, self.config
            )
        else:
            self._ods = self.corpus.generate_ods(
                mapping, real_world_type, self.config
            )
        self._by_id: dict[int, ObjectDescription] = {
            od.object_id: od for od in self._ods
        }
        self._indexed_ids = frozenset(self._by_id)
        self._index = (
            index
            if index is not None
            else CorpusIndex(
                self._ods,
                mapping,
                self.config.theta_tuple,
                strategy=self.config.similarity_strategy,
                encoding=self.config.index_encoding,
            )
        )
        self._similarity = DogmatixSimilarity(
            self._index, semantics=self.config.similar_semantics
        )
        self._classifier = ThresholdClassifier(
            self._similarity,
            self.config.theta_cand,
            possible_threshold=self.config.possible_threshold,
        )
        #: How many times this session built a corpus index (always 1;
        #: exposed so benchmarks can assert amortization).
        self.index_builds = 1
        #: theta_cand -> kept id set, LRU-bounded; guarded by
        #: ``_kept_lock`` (bookkeeping only — the O(n) filter pass
        #: itself runs outside the lock, see :meth:`_kept_for`).
        self._kept_cache: OrderedDict[float, frozenset[int]] = OrderedDict()
        self._kept_lock = threading.Lock()
        self._incremental: Optional[IncrementalDeduplicator] = None
        # Externally supplied ODs need not be numbered 0..n-1.
        self._next_id = max(self._by_id, default=-1) + 1
        # Foreign sentinel ids count downward from strictly below every
        # corpus id; extend() only ever allocates upward from _next_id,
        # so the ranges can never meet.  itertools.count.__next__ is a
        # single C-level step — concurrent match() calls on foreign
        # elements can never draw the same id (see _foreign_object_id).
        self._foreign_ids = itertools.count(
            min(0, min(self._by_id, default=0)) - 1, -1
        )
        self._last_filter: Optional[ObjectFilter] = None
        # The standing index is now served read-only: match() runs
        # lock-free across threads, backed by this assertion seam.
        self._index.freeze()

    @classmethod
    def from_ods(
        cls,
        ods: Sequence[ObjectDescription],
        mapping: TypeMapping,
        real_world_type: str,
        config: Optional[DogmatixConfig] = None,
    ) -> "DetectionSession":
        """Session over externally prepared ODs (no corpus generation).

        Used by the legacy ``DogmatiX.detect`` shim and by pipelines
        that build descriptions themselves (Definition 2 allows ODs not
        constrained by any data source).  ``extend``/``match`` with XML
        elements need corpus schemas, so add sources before using them.
        """
        return cls(Corpus(), mapping, real_world_type, config, ods=ods)

    # ------------------------------------------------------------------
    # Standing structures
    # ------------------------------------------------------------------
    @property
    def ods(self) -> Sequence[ObjectDescription]:
        """The indexed candidate set (including ``extend()``-ed objects)."""
        return tuple(self._ods)

    @property
    def index(self) -> CorpusIndex:
        return self._index

    @property
    def similarity(self) -> DogmatixSimilarity:
        return self._similarity

    @property
    def classifier(self) -> ThresholdClassifier:
        return self._classifier

    @property
    def object_filter(self) -> Optional[ObjectFilter]:
        """The filter of the most recent :meth:`detect` run, if any."""
        return self._last_filter

    @property
    def incremental(self) -> Optional[IncrementalDeduplicator]:
        """The incremental deduplicator, once :meth:`extend` has run."""
        return self._incremental

    def object_path(self, object_id: int) -> str:
        od = self._by_id.get(object_id)
        if od is None or od.element is None:
            return f"object:{object_id}"
        return od.element.absolute_path()

    # ------------------------------------------------------------------
    # Batch detection
    # ------------------------------------------------------------------
    def detect(
        self,
        theta_cand: Optional[float] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> DetectionResult:
        """Steps 4-6 against the standing index (engine-batched).

        ``theta_cand`` overrides the classification threshold for this
        run only — the index and similarity (which depend on
        ``theta_tuple``, not ``theta_cand``) are reused, so a threshold
        sweep pays for index construction once.  ``policy`` overrides
        the execution policy the same way; with ``backend="shard"``
        each worker enumerates *and* classifies its share of the
        candidate pairs locally (results stay bit-identical).
        """
        theta = self.config.theta_cand if theta_cand is None else theta_cand
        policy = policy or self.config.execution
        classifier = (
            self._classifier
            if theta == self.config.theta_cand
            else ThresholdClassifier(
                self._similarity,
                theta,
                possible_threshold=self.config.possible_threshold,
            )
        )
        shard_factory = None
        if policy.backend == "shard":
            pair_source, object_filter, shard_factory = self._sharded_step4(
                theta, policy
            )
        else:
            pair_source = None
            object_filter = None
            if self.config.use_blocking:
                pair_source = SharedTupleBlocking(self._index.block_keys)
            if self.config.use_object_filter:
                object_filter = ObjectFilter(self._index, theta)
                pair_source = ObjectFilterPruning(
                    object_filter.keep, inner=pair_source
                )

        pipeline = DetectionPipeline(
            candidate_definition=CandidateDefinition(
                self.real_world_type,
                tuple(sorted(self.mapping.xpaths_of(self.real_world_type))),
            ),
            description_definition=_DUMMY_DESCRIPTION,
            classifier=classifier,
            pair_source=pair_source,
            policy=policy,
            classifier_factory=DogmatixClassifierFactory(
                mapping=self.mapping,
                theta_tuple=self.config.theta_tuple,
                theta_cand=theta,
                possible_threshold=self.config.possible_threshold,
                semantics=self.config.similar_semantics,
                strategy=self._index.strategy,
                encoding=self._index.encoding,
            ),
            shard_factory=shard_factory,
        )
        result = pipeline.detect(self._ods)
        if object_filter is not None and pair_source is not None:
            # Worker-side filter evaluation: the engine merged the
            # per-shard decisions (candidate order) onto the pair
            # source; adopt them so this run's ObjectFilter exposes the
            # same decisions/pruned_count as a parent-side pass.
            decisions = getattr(pair_source, "filter_decisions", ())
            if decisions:
                object_filter.adopt(decisions)
        self._last_filter = object_filter
        return result

    def _sharded_step4(
        self, theta: float, policy: ExecutionPolicy
    ) -> tuple[ShardedPairSource, Optional[ObjectFilter], DogmatixShardFactory]:
        """Step-4 setup for the ``shard`` backend.

        Two placements for the object filter, selected by
        ``policy.filter_in_workers``:

        * **parent-side** (default): the per-object pass runs here, in
          candidate order — exactly like the lazy serial
          ``ObjectFilterPruning`` evaluation — and the surviving ids
          ship to the workers, which only enumerate;
        * **worker-side**: nothing filter-related runs here.  The
          :class:`DogmatixShardFactory` carries ``filter_theta``, the
          engine runs a filter phase across the pool (each worker
          decides its own filter shards), merges the decisions back
          into candidate order, and installs them on the parent-side
          pair source; :meth:`detect` then adopts them into this run's
          :class:`ObjectFilter` so introspection is placement-agnostic.
          The parent-side source also holds ``object_filter.decide``
          for the no-pool fallback (``workers=1`` — the same pass,
          evaluated lazily in the parent).

        Either way the quadratic pair enumeration ships to the workers
        and results stay bit-identical.
        """
        object_filter = None
        kept_ids: Optional[frozenset[int]] = None
        pruned: list[int] = []
        decider = None
        worker_filter = False
        if self.config.use_object_filter:
            object_filter = ObjectFilter(self._index, theta)
            if policy.filter_in_workers:
                worker_filter = True
                decider = object_filter.decide
            else:
                kept: list[int] = []
                for od in self._ods:
                    (kept if object_filter.keep(od) else pruned).append(
                        od.object_id
                    )
                kept_ids = frozenset(kept)
        shard_count = policy.shard_count()
        pair_source = ShardedPairSource(
            shard_count,
            block_index=self._index if self.config.use_blocking else None,
            shard_by=policy.shard_by,
            kept_ids=kept_ids,
            pruned_ids=pruned,
            object_filter=decider,
        )
        shard_factory = DogmatixShardFactory(
            mapping=self.mapping,
            theta_tuple=self.config.theta_tuple,
            theta_cand=theta,
            possible_threshold=self.config.possible_threshold,
            semantics=self.config.similar_semantics,
            shard_count=shard_count,
            shard_by=policy.shard_by,
            use_blocking=self.config.use_blocking,
            kept_ids=kept_ids,
            filter_theta=theta if worker_filter else None,
            strategy=self._index.strategy,
            encoding=self._index.encoding,
        )
        return pair_source, object_filter, shard_factory

    # ------------------------------------------------------------------
    # Single-object lookup
    # ------------------------------------------------------------------
    def match(
        self,
        target: Union[int, ObjectDescription, Element],
        theta_cand: Optional[float] = None,
        include_possible: bool = False,
    ) -> list[Match]:
        """Duplicate partners of one object against the standing index.

        Returns exactly the partners a full :meth:`detect` (at the same
        threshold) reports for that object, without running the batch:
        candidates come from the index's similar-value groups — a pair
        without a directly similar comparable tuple has ``ODT≈ = ∅``
        and similarity 0, so nothing above a positive threshold is ever
        missed.  The object filter, when enabled, is honored both for
        the queried object and for its candidates.

        ``target`` may be an object id of the candidate set, any
        :class:`ObjectDescription` (also external ones), or an XML
        element — a corpus element resolves to its OD; a foreign
        element gets an OD generated on the fly from the session's
        description selection.

        Matches are sorted by descending similarity; with
        ``include_possible`` pairs in the C2 band (when configured) are
        appended after the duplicates.
        """
        theta = self.config.theta_cand if theta_cand is None else theta_cand
        od = self._resolve_od(target)
        in_index = (
            od.object_id in self._indexed_ids
            and self._by_id.get(od.object_id) is od
        )
        kept = self._kept_for(theta)
        if kept is not None:
            if in_index and od.object_id not in kept:
                return []  # detect() prunes every pair of this object
            if not in_index and not ObjectFilter(self._index, theta).keep(od):
                return []
        candidate_ids: set[int] = set()
        for odt in od.tuples:
            key = self._index.key_of(odt.name)
            candidate_ids |= self._index.objects_with_similar(
                key, odt.value, exclude=od.object_id if in_index else None
            )
        if kept is not None:
            candidate_ids &= kept
        possible = self.config.possible_threshold
        matches: list[Match] = []
        for candidate_id in sorted(candidate_ids):
            score = self._similarity(od, self._by_id[candidate_id])
            if score > theta or (
                include_possible and possible is not None and score > possible
            ):
                matches.append(
                    Match(candidate_id, score, self.object_path(candidate_id))
                )
        matches.sort(key=lambda match: (-match.similarity, match.object_id))
        return matches

    def _kept_for(self, theta: float) -> Optional[frozenset[int]]:
        """Ids surviving the object filter at ``theta`` (None = no filter).

        Memoized per ``theta`` in a small LRU (not just at the default
        threshold — a served ``match(theta_cand=...)`` at any sweep
        point must not re-run the O(n) filter pass per request).
        Publication is single-assignment: the set is built fully
        outside the lock and installed with ``setdefault``, so a
        concurrent reader sees either nothing or one complete
        frozenset, and the first writer wins — every caller at a given
        theta gets the *same* object.  ``extend()`` clears the cache
        (filter outcomes depend on the index) behind its writer lock.
        """
        if not self.config.use_object_filter:
            return None
        with self._kept_lock:
            cached = self._kept_cache.get(theta)
            if cached is not None:
                self._kept_cache.move_to_end(theta)
                return cached
        object_filter = ObjectFilter(self._index, theta)
        kept = frozenset(
            od.object_id for od in self._ods if object_filter.keep(od)
        )
        with self._kept_lock:
            kept = self._kept_cache.setdefault(theta, kept)
            self._kept_cache.move_to_end(theta)
            while len(self._kept_cache) > _KEPT_CACHE_SIZE:
                self._kept_cache.popitem(last=False)
        return kept

    def _resolve_od(
        self, target: Union[int, ObjectDescription, Element]
    ) -> ObjectDescription:
        if isinstance(target, ObjectDescription):
            return target
        if isinstance(target, int):
            od = self._by_id.get(target)
            if od is None:
                raise KeyError(f"no object with id {target} in this session")
            return od
        if isinstance(target, Element):
            for od in self._ods:
                if od.element is target:
                    return od
            return self._describe_element(target)
        raise TypeError(
            f"cannot match a {type(target).__name__}; pass an object id, "
            "an ObjectDescription, or an XML element"
        )

    def _foreign_object_id(self) -> int:
        """A fresh sentinel id strictly outside the corpus id space.

        Foreign ODs must never share an id with an indexed object:
        :class:`~repro.core.object_filter.ObjectFilter` and the index
        searches exclude ``od.object_id`` as "the object itself", so a
        colliding id would silently drop a *real* corpus object's
        evidence (e.g. the foreign element's one duplicate) from the
        shared-information search.  Each call returns a *new* id —
        per-id memos (``ObjectFilter.decide``) must never conflate two
        different foreign elements either.

        Allocation is atomic: the old read-modify-write on an instance
        attribute let two concurrent ``match()`` calls draw the same
        sentinel, conflating two foreign elements in any shared per-id
        memo.  ``itertools.count`` advances in one C-level step under
        the GIL, and the counter starts strictly below every corpus id
        (``extend()`` only allocates upward), so ids are unique without
        a lock.
        """
        return next(self._foreign_ids)

    def _describe_element(self, element: Element) -> ObjectDescription:
        """OD for a foreign element of the candidate type."""
        generic = strip_positions(element.absolute_path())
        if generic not in self.mapping.xpaths_of(self.real_world_type):
            raise ValueError(
                f"element at {generic!r} is not a {self.real_world_type!r} "
                "candidate under this session's mapping"
            )
        for source in self.corpus:
            declaration = self.corpus.schema_of(source).get(generic)
            if declaration is not None:
                description = self.config.selector.description_definition(
                    declaration, include_empty=self.config.include_empty
                )
                return description.generate_od(self._foreign_object_id(), element)
        raise ValueError(
            f"no corpus schema declares {generic!r}; add a source with "
            "that structure first"
        )

    # ------------------------------------------------------------------
    # Incremental ingestion
    # ------------------------------------------------------------------
    def extend(
        self,
        source: SourceLike,
        check_members_on_miss: bool = False,
    ) -> IncrementalUpdate:
        """Ingest a new source incrementally (merge/purge style).

        The source's candidates are clustered against the *prime
        representatives* of the clusters formed so far — comparisons
        grow with the number of clusters, not with corpus size.  The
        first call seeds the stream with the session's existing
        candidate set, so extension clusters are consistent with the
        corpus.

        The standing index grows with every call: an
        :class:`~repro.core.index.IndexPartial` over the new ODs is
        delta-merged into it *before* any comparison, so the softIDF
        statistics, similar-value groups, and blocking view cover the
        extension — subsequent :meth:`match` and :meth:`detect` calls
        see the extended objects exactly as a session rebuilt over the
        grown corpus would (bit-identical results; pinned by
        ``tests/test_ingest_merge.py``).
        """
        added_source = self.corpus.add_source(source)
        new_ods = self.corpus.generate_ods(
            self.mapping,
            self.real_world_type,
            self.config,
            sources=[added_source],
            next_id=self._next_id,
        )
        # repro: allow[RPR004] extend() is the session's one writer: it
        # runs behind the per-session writer lock when serving (see
        # repro.serve.sessions) and single-threaded otherwise
        self._next_id += len(new_ods)
        # Delta-merge the index first: clustering (and every later
        # query) scores against statistics that include the new data,
        # like a fresh build over the grown corpus would.  The index is
        # pinned read-only for concurrent match() readers; extend() is
        # the one sanctioned writer (serialize it behind a per-session
        # writer lock when serving, e.g. repro.serve's registry), so it
        # thaws for the merge and re-freezes unconditionally.
        self._index.thaw()
        try:
            self._index.merge_partial(
                IndexPartial.from_ods(
                    new_ods,
                    self.mapping,
                    q=self._index.q,
                    strategy=self._index.strategy,
                    encoding=self._index.encoding,
                )
            )
        finally:
            self._index.freeze()
        with self._kept_lock:
            self._kept_cache.clear()  # filter outcomes depend on the index
        if self._incremental is None:
            self._incremental = IncrementalDeduplicator(
                self._similarity,
                self.config.theta_cand,
                check_members_on_miss=check_members_on_miss,
            )
            self._incremental.add_all(self._ods)
        self._ods.extend(new_ods)
        # repro: allow[RPR004] writer-lock-serialized (see _next_id note)
        self._indexed_ids |= frozenset(od.object_id for od in new_ods)
        assignments: list[tuple[int, int]] = []
        for od in new_ods:
            self._by_id[od.object_id] = od
            assignments.append((od.object_id, self._incremental.add(od)))
        return IncrementalUpdate(
            added=tuple(new_ods),
            assignments=tuple(assignments),
            duplicate_clusters=tuple(
                tuple(cluster)
                for cluster in self._incremental.duplicate_clusters()
            ),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def explain(
        self,
        left: Union[int, ObjectDescription, Element],
        right: Union[int, ObjectDescription, Element],
    ) -> Explanation:
        """An immutable similarity breakdown for one pair."""
        od_left = self._resolve_od(left)
        od_right = self._resolve_od(right)
        raw = self._similarity.explain(od_left, od_right)
        return Explanation(
            left=od_left.object_id,
            right=od_right.object_id,
            similarity=float(raw["similarity"]),  # type: ignore[arg-type]
            similar_pairs=tuple(raw["similar_pairs"]),  # type: ignore[arg-type]
            contradictory_pairs=tuple(raw["contradictory_pairs"]),  # type: ignore[arg-type]
            non_specified_left=tuple(raw["non_specified_left"]),  # type: ignore[arg-type]
            non_specified_right=tuple(raw["non_specified_right"]),  # type: ignore[arg-type]
            set_soft_idf_similar=float(raw["setSoftIDF_similar"]),  # type: ignore[arg-type]
            set_soft_idf_contradictory=float(raw["setSoftIDF_contradictory"]),  # type: ignore[arg-type]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DetectionSession {self.real_world_type!r}: "
            f"{len(self._ods)} candidates, {len(self.corpus)} sources>"
        )


# detect() receives ready-made ODs; the pipeline never executes this.
_DUMMY_DESCRIPTION = DescriptionDefinition((".",))
