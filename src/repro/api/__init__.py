"""api: the session-based public surface of the system.

The one-shot ``DogmatiX(config).run(...)`` call rebuilds everything per
invocation; this package is the prepared, reusable alternative a
service wants:

* :class:`Corpus` — sources plus cached schemas (``add_source``);
* :class:`DetectionSession` — index/similarity/classifier built once,
  then ``detect()`` (batch, engine-backed), ``match()`` (single-object
  lookup), ``extend()`` (incremental ingestion), ``explain()``
  (immutable :class:`Explanation` values);
* :class:`RunSpec` — a full run as JSON, for the CLI (``--spec``) and
  job queues;
* registries (:data:`HEURISTICS`, :data:`CONDITIONS`,
  :data:`SEMANTICS`, :data:`BACKENDS`) naming every pluggable piece
  with strings, so specs and user extensions meet in one namespace.
"""

from .corpus import Corpus, SourceLike
from .registries import (
    BACKENDS,
    CONDITIONS,
    HEURISTICS,
    SEMANTICS,
    Registry,
    condition_from_spec,
    heuristic_from_spec,
)
from .session import (
    DetectionSession,
    Explanation,
    IncrementalUpdate,
    Match,
)
from .spec import RunSpec

__all__ = [
    "BACKENDS",
    "CONDITIONS",
    "Corpus",
    "DetectionSession",
    "Explanation",
    "HEURISTICS",
    "IncrementalUpdate",
    "Match",
    "Registry",
    "RunSpec",
    "SEMANTICS",
    "SourceLike",
    "condition_from_spec",
    "heuristic_from_spec",
]
