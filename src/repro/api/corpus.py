"""Corpus: the data side of a detection session.

A corpus owns the sources (documents plus optional schemas), resolves
and caches schemas *outside* the :class:`~repro.core.dogmatix.Source`
value (a ``Source`` shared across runs stays immutable), and generates
object descriptions for a ``(mapping, real-world type, config)``
triple — steps 1-3 of the framework pipeline, with the exact candidate
ordering the batch algorithm uses (sorted candidate XPaths outer,
sources in insertion order inner).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Union

from ..core import DogmatixConfig, Source
from ..framework import ObjectDescription, TypeMapping
from ..xmlkit import Document, Element, Schema, compile_path, infer_schema

SourceLike = Union[Source, Document, Element]


class Corpus:
    """Sources plus their resolved schemas, reusable across sessions.

    Schema inference is cached per source *here*, keyed by identity, so
    adding the same schema-less source to two corpora (or running it
    through many sessions) infers its schema once per corpus and never
    mutates the source itself.
    """

    def __init__(self, sources: SourceLike | Iterable[SourceLike] = ()) -> None:
        self._sources: list[Source] = []
        # Keyed by the Source value itself (frozen, hashable), which
        # also keeps it alive — an id()-keyed cache would hand out a
        # dead source's schema once the id is recycled.
        self._schemas: dict[Source, Schema] = {}
        if isinstance(sources, (Source, Document, Element)):
            sources = [sources]
        for source in sources:
            self.add_source(source)

    # ------------------------------------------------------------------
    def add_source(
        self, source: SourceLike, schema: Optional[Schema] = None
    ) -> Source:
        """Add one source; returns the (immutable) ``Source`` record.

        ``schema`` may accompany a bare document/element; passing one
        alongside a ``Source`` that already carries a schema is an
        error rather than a silent override.
        """
        if isinstance(source, Source):
            if schema is not None and source.schema is not None:
                raise ValueError(
                    "source already carries a schema; cannot override it"
                )
            if schema is not None:
                source = Source(source.document, schema)
        else:
            source = Source(source, schema)
        self._sources.append(source)
        return source

    @property
    def sources(self) -> tuple[Source, ...]:
        return tuple(self._sources)

    def __len__(self) -> int:
        return len(self._sources)

    def __iter__(self) -> Iterator[Source]:
        return iter(self._sources)

    # ------------------------------------------------------------------
    def schema_of(self, source: Source) -> Schema:
        """The source's schema — given, or inferred once and cached."""
        if source.schema is not None:
            return source.schema
        cached = self._schemas.get(source)
        if cached is None:
            cached = self._schemas[source] = infer_schema(source.document)
        return cached

    # ------------------------------------------------------------------
    def generate_ods(
        self,
        mapping: TypeMapping,
        real_world_type: str,
        config: DogmatixConfig,
        sources: Optional[Sequence[Source]] = None,
        next_id: int = 0,
    ) -> list[ObjectDescription]:
        """Steps 1-3: candidates, descriptions, OD generation.

        ``sources`` restricts generation to a subset (used by
        incremental ingestion); ids continue from ``next_id``.
        Candidates from different schema elements (e.g. ``movie`` and
        ``film``) get descriptions selected from *their* schema, so
        structurally different sources coexist in one candidate set.
        """
        source_list = self._sources if sources is None else list(sources)
        selector = config.selector
        ods: list[ObjectDescription] = []
        for xpath in sorted(mapping.xpaths_of(real_world_type)):
            compiled = compile_path(xpath)
            for source in source_list:
                schema = self.schema_of(source)
                declaration = schema.get(xpath)
                if declaration is None:
                    continue  # this source does not contain the element
                description = selector.description_definition(
                    declaration, include_empty=config.include_empty
                )
                for element in compiled.select(source.document):
                    ods.append(description.generate_od(next_id, element))
                    next_id += 1
        return ods
