"""String registries for the pluggable pieces of a detection run.

Everything a :class:`~repro.api.spec.RunSpec` has to name survives a
round trip through JSON as a plain string, so every pluggable family
gets a registry mapping names to implementations:

* :data:`HEURISTICS` — description-selection heuristics (Sec. 4.1),
  instantiated from specs like ``kclosest:6`` or unions such as
  ``rdistant:1+ancestors:1``;
* :data:`CONDITIONS` — selection-refining conditions (Sec. 4.2),
  named ``cm``, ``sdt``, ``me``, ``se`` and combined with commas
  (ANDed, Combination 2);
* :data:`SEMANTICS` — similar-pair semantics of the similarity measure
  (``matching`` | ``all-pairs``);
* :data:`BACKENDS` — execution backends of the engine
  (``serial`` | ``process``);
* :data:`STRATEGIES` — similar-value search strategies behind the
  corpus index (``qgram`` | ``signature``; bit-identical results);
* :data:`ENCODINGS` — index-state encodings applied at ``freeze()``
  (``dict`` | ``compact``; bit-identical results).

Registries are open: extensions may :meth:`Registry.register` their own
heuristics, conditions, or backend names and refer to them from specs
and the CLI without touching this package.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from ..core import (
    Condition,
    Heuristic,
    KClosestDescendants,
    RDistantAncestors,
    RDistantDescendants,
    c_and,
    c_cm,
    c_me,
    c_sdt,
    c_se,
    h_or,
)
from ..core.encodings import INDEX_ENCODINGS as _INDEX_ENCODINGS
from ..engine import BACKENDS as _ENGINE_BACKENDS
from ..strings import SIMILARITY_STRATEGIES as _SIMILARITY_STRATEGIES


class Registry:
    """A named string -> implementation mapping with aliases.

    Lookups raise :class:`LookupError` naming the known entries, so a
    typo in a spec or on the command line fails with the full menu.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._values: dict[str, object] = {}
        self._canonical: dict[str, str] = {}

    def register(self, name: str, value: object, aliases: tuple[str, ...] = ()):
        """Add an entry (chainable decorator-style: returns ``value``)."""
        for key in (name, *aliases):
            if not key:
                raise ValueError(f"{self.kind} name must be non-empty")
            if key in self._canonical:
                raise ValueError(f"{self.kind} {key!r} is already registered")
        self._values[name] = value
        self._canonical[name] = name
        for alias in aliases:
            self._canonical[alias] = name
        return value

    def get(self, name: str) -> object:
        canonical = self._canonical.get(name)
        if canonical is None:
            raise LookupError(
                f"unknown {self.kind} {name!r}; registered: {', '.join(self.names())}"
            )
        return self._values[canonical]

    def canonical_name(self, name: str) -> str:
        """Resolve an alias to its canonical name (LookupError if unknown)."""
        canonical = self._canonical.get(name)
        if canonical is None:
            raise LookupError(
                f"unknown {self.kind} {name!r}; registered: {', '.join(self.names())}"
            )
        return canonical

    def names(self) -> list[str]:
        """Canonical names, sorted."""
        return sorted(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._canonical

    def __iter__(self) -> Iterator[tuple[str, object]]:
        return iter(self._values.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Registry {self.kind}: {', '.join(self.names())}>"


#: Heuristic factories: ``name -> (int parameter) -> Heuristic``.
HEURISTICS = Registry("heuristic")
HEURISTICS.register("kclosest", KClosestDescendants, aliases=("k",))
HEURISTICS.register("rdistant", RDistantDescendants, aliases=("r",))
HEURISTICS.register("ancestors", RDistantAncestors, aliases=("a",))

#: Condition predicates by their paper names.
CONDITIONS = Registry("condition")
CONDITIONS.register("cm", c_cm)
CONDITIONS.register("sdt", c_sdt)
CONDITIONS.register("me", c_me)
CONDITIONS.register("se", c_se)

#: Similar-pair semantics accepted by ``DogmatixConfig.similar_semantics``.
SEMANTICS = Registry("semantics")
SEMANTICS.register("matching", "matching")
SEMANTICS.register("all-pairs", "all-pairs")

#: Execution backends of the engine (mirrors ``engine.BACKENDS``).
BACKENDS = Registry("backend")
for _backend in _ENGINE_BACKENDS:
    BACKENDS.register(_backend, _backend)

#: Similar-value search strategies behind the corpus index (mirrors
#: ``strings.SIMILARITY_STRATEGIES``): ``qgram`` is the count-filter
#: oracle, ``signature`` the prefix-filtering scheme.  Results are
#: bit-identical across strategies — pinned by the differential fuzz
#: harness — so the choice is purely a performance knob.
STRATEGIES = Registry("similarity strategy")
for _strategy in sorted(_SIMILARITY_STRATEGIES):
    STRATEGIES.register(_strategy, _SIMILARITY_STRATEGIES[_strategy])

#: Index-state encodings behind the corpus index (mirrors
#: ``core.encodings.INDEX_ENCODINGS``): ``dict`` is the original
#: representation (the parity oracle), ``compact`` re-encodes frozen
#: state as interned string tables + flat sorted posting arrays.
#: Results are bit-identical across encodings — pinned by the
#: differential fuzz harness — so the choice trades memory and warm
#: load time, never output.
ENCODINGS = Registry("index encoding")
for _encoding in sorted(_INDEX_ENCODINGS):
    ENCODINGS.register(_encoding, _INDEX_ENCODINGS[_encoding])


def heuristic_from_spec(spec: str) -> Heuristic:
    """Build a heuristic from a spec string.

    One term looks like ``name:number`` (``kclosest:6``, ``rdistant:2``,
    ``ancestors:1``, or the one-letter aliases ``k``/``r``/``a``);
    ``+``-joined terms are unioned (Combination 1's OR).
    """
    terms = [term.strip() for term in spec.split("+")]
    built: list[Heuristic] = []
    for term in terms:
        name, _, raw = term.partition(":")
        if not raw or not raw.isdigit():
            raise ValueError(f"heuristic {term!r} must look like name:number")
        factory: Callable[[int], Heuristic] = HEURISTICS.get(name)  # type: ignore[assignment]
        built.append(factory(int(raw)))
    combined = built[0]
    for heuristic in built[1:]:
        combined = h_or(combined, heuristic)
    return combined


def condition_from_spec(spec: Optional[str]) -> Optional[Condition]:
    """Build a condition from a comma list (ANDed); None/empty -> None."""
    if not spec:
        return None
    names = [name.strip() for name in spec.split(",") if name.strip()]
    if not names:
        return None
    return c_and(*(CONDITIONS.get(name) for name in names))  # type: ignore[misc]
