"""RunSpec: one full detection run as a serializable value.

A :class:`RunSpec` names everything a run needs — documents, schemas,
the mapping file, the candidate type, and every knob of
:class:`~repro.core.config.DogmatixConfig` plus the execution policy —
using registry strings only, so it round-trips through JSON without
loss (``RunSpec.from_json(spec.to_json()).to_config() ==
spec.to_config()``, execution policy included).

Specs are the exchange format between the CLI (``--spec run.json``),
services that queue detection jobs, and the session API:
``RunSpec.load(path).build_session()`` yields a ready
:class:`~repro.api.session.DetectionSession`.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Optional

from ..core import DogmatixConfig, Source
from ..engine import DEFAULT_BATCH_SIZE, SHARD_MODES, ExecutionPolicy
from ..framework import TypeMapping, mapping_from_xml
from ..xmlkit import parse_file, parse_schema_file
from .registries import (
    BACKENDS,
    ENCODINGS,
    SEMANTICS,
    STRATEGIES,
    condition_from_spec,
    heuristic_from_spec,
)


@dataclass
class RunSpec:
    """A complete, serializable description of one detection run.

    Attributes
    ----------
    documents:
        XML document paths (at least one).
    mapping:
        Path of the mapping *M* file (XML).
    real_world_type:
        The candidate type to deduplicate.
    schemas:
        XSD paths paired with ``documents`` positionally: the i-th
        schema belongs to the i-th document; documents beyond the list
        get inferred schemas.  More schemas than documents is an error.
    heuristic / conditions:
        Registry spec strings (see :mod:`repro.api.registries`), e.g.
        ``"kclosest:6"`` and ``"sdt,me"``.
    theta_tuple ... similar_semantics:
        The corresponding :class:`DogmatixConfig` fields.
    workers / batch_size / backend / shard_by / filter_in_workers:
        The execution policy.  ``backend=None`` derives it from the
        worker count (``process`` when > 1); ``workers=0`` means all
        cores.  ``backend="shard"`` moves pair generation into the
        workers; ``shard_by`` picks its strategy (``block`` |
        ``object``) and is ignored by the other backends.
        ``filter_in_workers`` additionally evaluates the object filter
        inside the workers (shard backend only — setting it with no
        explicit backend selects ``shard``, mirroring the CLI flag).
    ingest_workers:
        Worker processes for corpus *construction* (document parsing,
        OD generation, index building — see :mod:`repro.ingest`);
        ``0`` means all cores, ``1`` (default) builds in the parent.
        Independent of the detection backend; results are identical.
    """

    documents: list[str]
    mapping: str
    real_world_type: str
    schemas: list[str] = field(default_factory=list)
    heuristic: str = "kclosest:6"
    conditions: Optional[str] = None
    theta_tuple: float = 0.15
    theta_cand: float = 0.55
    use_object_filter: bool = True
    use_blocking: bool = True
    include_empty: bool = False
    possible_threshold: Optional[float] = None
    similar_semantics: str = "matching"
    #: Similar-value search strategy ("qgram" | "signature"); ``None``
    #: defers to the config default (which honors the
    #: ``REPRO_SIMILARITY_STRATEGY`` environment override).  Results
    #: are bit-identical either way, so the knob — like the execution
    #: policy — stays out of the index store's content key.
    similarity_strategy: Optional[str] = None
    #: Index-state encoding ("dict" | "compact"); ``None`` defers to
    #: the config default (which honors the ``REPRO_INDEX_ENCODING``
    #: environment override).  Bit-identical results either way, so —
    #: like the strategy — it stays out of the index store's content
    #: key and is applied from the *live* spec at load time.
    index_encoding: Optional[str] = None
    workers: int = 1
    batch_size: int = DEFAULT_BATCH_SIZE
    backend: Optional[str] = None
    shard_by: str = "block"
    filter_in_workers: bool = False
    ingest_workers: int = 1

    def __post_init__(self) -> None:
        if not self.documents:
            raise ValueError("RunSpec needs at least one document")
        if len(self.schemas) > len(self.documents):
            raise ValueError(
                f"got {len(self.schemas)} schemas for {len(self.documents)} "
                "documents; schemas pair with documents positionally"
            )
        heuristic_from_spec(self.heuristic)  # validate eagerly
        condition_from_spec(self.conditions)
        SEMANTICS.get(self.similar_semantics)
        if self.similarity_strategy is not None:
            STRATEGIES.get(self.similarity_strategy)
        if self.index_encoding is not None:
            ENCODINGS.get(self.index_encoding)
        if self.backend is not None:
            BACKENDS.get(self.backend)
        if self.shard_by not in SHARD_MODES:
            raise ValueError(
                f"shard_by must be one of {SHARD_MODES}, got {self.shard_by!r}"
            )
        if self.filter_in_workers and self.backend not in (None, "shard"):
            raise ValueError(
                f"filter_in_workers requires the shard backend (or no "
                f"explicit backend, which then selects it), got "
                f"backend={self.backend!r}"
            )
        if self.filter_in_workers and not self.use_object_filter:
            raise ValueError(
                "filter_in_workers has no filter to shard with "
                "use_object_filter=False; enable the filter or drop the "
                "flag"
            )
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.ingest_workers < 0:
            raise ValueError(
                f"ingest_workers must be >= 0, got {self.ingest_workers}"
            )

    # ------------------------------------------------------------------
    # Config / policy
    # ------------------------------------------------------------------
    def execution_policy(self) -> ExecutionPolicy:
        """The execution policy this spec describes.

        A non-default ``shard_by`` — or ``filter_in_workers`` — with no
        explicit backend selects the shard backend, mirroring the CLI
        where ``--shard-by``/``--filter-in-workers`` imply it, instead
        of silently demoting the requested sharding to parent-side
        evaluation.  (The default ``shard_by="block"`` is
        indistinguishable from "unset", so plain block sharding needs
        ``backend="shard"`` spelled out.)
        """
        ingest = self.ingest_workers or (os.cpu_count() or 1)
        if (
            self.backend is None
            and self.shard_by == "block"
            and not self.filter_in_workers
        ):
            policy = ExecutionPolicy.for_workers(self.workers, self.batch_size)
            if ingest != policy.ingest_workers:
                policy = replace(policy, ingest_workers=ingest)
            return policy
        workers = self.workers or (os.cpu_count() or 1)
        return ExecutionPolicy(
            workers=workers,
            batch_size=self.batch_size,
            backend=self.backend or "shard",
            shard_by=self.shard_by,
            filter_in_workers=self.filter_in_workers,
            ingest_workers=ingest,
        )

    def to_config(self) -> DogmatixConfig:
        """The :class:`DogmatixConfig` this spec describes."""
        overrides: dict = {}
        if self.similarity_strategy is not None:
            overrides["similarity_strategy"] = STRATEGIES.canonical_name(
                self.similarity_strategy
            )
        if self.index_encoding is not None:
            overrides["index_encoding"] = ENCODINGS.canonical_name(
                self.index_encoding
            )
        return DogmatixConfig(
            heuristic=heuristic_from_spec(self.heuristic),
            condition=condition_from_spec(self.conditions),
            theta_tuple=self.theta_tuple,
            theta_cand=self.theta_cand,
            use_object_filter=self.use_object_filter,
            use_blocking=self.use_blocking,
            include_empty=self.include_empty,
            possible_threshold=self.possible_threshold,
            similar_semantics=SEMANTICS.canonical_name(self.similar_semantics),
            execution=self.execution_policy(),
            **overrides,
        )

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown RunSpec keys: {', '.join(unknown)}")
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("RunSpec JSON must be an object")
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "RunSpec":
        """Read a spec file; relative file paths resolve against it."""
        with open(path, encoding="utf-8") as handle:
            spec = cls.from_json(handle.read())
        base = os.path.dirname(os.path.abspath(path))
        spec.documents = [_resolve(base, p) for p in spec.documents]
        spec.schemas = [_resolve(base, p) for p in spec.schemas]
        spec.mapping = _resolve(base, spec.mapping)
        return spec

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def load_sources(self) -> list[Source]:
        """Parse the documents (and their schemas, where given)."""
        parsed_schemas = [parse_schema_file(path) for path in self.schemas]
        sources = []
        for index, path in enumerate(self.documents):
            schema = parsed_schemas[index] if index < len(parsed_schemas) else None
            sources.append(Source(parse_file(path), schema))
        return sources

    def load_mapping(self) -> TypeMapping:
        with open(self.mapping, encoding="utf-8") as handle:
            return mapping_from_xml(handle.read())

    def build_session(self):
        """A ready :class:`~repro.api.session.DetectionSession`.

        With ``ingest_workers`` > 1 construction routes through
        :class:`repro.ingest.ParallelIngestor`, which also parses the
        documents inside the pool — the session is identical either
        way.
        """
        from .session import DetectionSession

        config = self.to_config()
        if config.execution.ingest_workers > 1:
            from ..ingest import ParallelIngestor

            ingestor = ParallelIngestor(config.execution.ingest_workers)
            return ingestor.build_session(
                self.documents,
                self.load_mapping(),
                self.real_world_type,
                config,
                schemas=[parse_schema_file(path) for path in self.schemas],
            )
        return DetectionSession(
            self.load_sources(),
            self.load_mapping(),
            self.real_world_type,
            config,
        )


def _resolve(base: str, path: str) -> str:
    return path if os.path.isabs(path) else os.path.join(base, path)
