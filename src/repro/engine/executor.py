"""Batched pair classification across workers (pipeline steps 4+5).

The :class:`ParallelClassifier` executes the classification of candidate
pairs over the batches a :class:`~repro.engine.batcher.PairBatcher`
produces.  Three backends share the scoring code path:

* **serial** — batches are classified in-process; this is the
  zero-dependency fallback and, by construction, the ``workers=1`` case
  of the batched path;
* **process** — batches fan out over a ``multiprocessing`` pool.  A
  worker initializer receives the full (element-stripped) OD instance
  once and builds the classifier there — for DogmatiX that means one
  :class:`~repro.core.index.CorpusIndex` per worker, not per pair.
  Batch payloads are plain id pairs; results are the kept
  :class:`~repro.framework.result.ScoredPair` lists, concatenated in
  batch order so every backend yields the identical pair sequence;
* **shard** — pair *generation* moves into the workers too: the pool
  payload is shard ids, and each worker enumerates and classifies its
  shards' pairs locally via a
  :class:`~repro.engine.sharder.ShardRuntimeFactory` (for DogmatiX one
  index per worker drives both blocking keys and similarity), so pair
  batches never cross the process boundary.  Kept pairs come back in
  shard order, which generally differs from the serial enumeration
  order — the pipeline orders result pairs canonically, so results
  stay bit-identical across backends (``tests/test_shard_equivalence``).
  When the shard runtime evaluates the object filter too
  (``ExecutionPolicy.filter_in_workers``), a filter phase runs on the
  same pool first: each worker decides its share of the candidates and
  the parent merges the decisions back into candidate order before any
  pair is enumerated.

Classifier construction inside workers goes through a *classifier
factory*: a picklable callable ``factory(ods) -> classifier``.  When no
factory is given the live classifier itself is shipped (fine for
stateless classifiers); if that is not picklable the executor silently
falls back to the serial backend rather than failing.

**Process-backend contract:** worker-side classifiers see
element-stripped ODs — ``object_id`` and the OD tuples only, with
``od.element`` always ``None`` (see :func:`bare_ods`).  Every
classifier in this repository (DogmatiX, the baselines) scores from
tuples alone, but a custom classifier that consults ``od.element``
must stay on the serial backend, or it will diverge from serial
results.
"""

from __future__ import annotations

import multiprocessing
import pickle
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..framework.classifier import Classifier, DUPLICATES, POSSIBLE_DUPLICATES
from ..framework.od import ObjectDescription
from ..framework.pruning import PairSource
from ..framework.result import ScoredPair
from .batcher import PairBatcher, chunked
from .policy import ExecutionPolicy
from .sharder import (
    AssembledShardFactory,
    ObjectDecision,
    ShardRuntimeFactory,
    owned_filter_objects,
)

#: ``factory(ods) -> classifier``; must be picklable for the process
#: backend (module-level callables and frozen dataclasses qualify).
ClassifierFactory = Callable[[Sequence[ObjectDescription]], Classifier]


def score_batch(
    batch: Iterable[tuple[int, int]],
    by_id: dict[int, ObjectDescription],
    classifier: Classifier,
    keep_possible: bool,
) -> list[ScoredPair]:
    """Classify one batch; return only the pairs worth materializing.

    Non-duplicate pairs are dropped here (the paper's Step 5 note), so
    worker -> parent result payloads stay proportional to duplicates,
    not to comparisons.
    """
    scorer = getattr(classifier, "score_and_classify", None)
    kept: list[ScoredPair] = []
    for left, right in batch:
        if scorer is not None:  # one similarity evaluation per pair
            score, label = scorer(by_id[left], by_id[right])
        else:
            score, label = 1.0, classifier.classify(by_id[left], by_id[right])
        if label == DUPLICATES or (label == POSSIBLE_DUPLICATES and keep_possible):
            kept.append(ScoredPair(left, right, score, label))
    return kept


@dataclass(frozen=True)
class ConstantClassifierFactory:
    """Factory that ships a ready-made classifier to the workers."""

    classifier: Classifier

    def __call__(self, ods: Sequence[ObjectDescription]) -> Classifier:
        return self.classifier


def bare_ods(ods: Sequence[ObjectDescription]) -> list[ObjectDescription]:
    """Element-stripped copies for worker transmission.

    Classification needs only ``object_id`` and the OD tuples; XML
    elements (used for result XPaths in the parent) would bloat — and
    for deep trees endanger — the pickle payload.
    """
    return [ObjectDescription(od.object_id, od.tuples, None) for od in ods]


# ----------------------------------------------------------------------
# Worker-process state (one classifier per worker, built once)
# ----------------------------------------------------------------------
_WORKER_STATE: dict[str, object] = {}


def _init_worker(
    factory: ClassifierFactory,
    ods: Sequence[ObjectDescription],
    keep_possible: bool,
) -> None:
    _WORKER_STATE["by_id"] = {od.object_id: od for od in ods}
    _WORKER_STATE["classifier"] = factory(ods)
    _WORKER_STATE["keep_possible"] = keep_possible


def _score_batch_in_worker(batch: list[tuple[int, int]]) -> list[ScoredPair]:
    return score_batch(
        batch,
        _WORKER_STATE["by_id"],  # type: ignore[arg-type]
        _WORKER_STATE["classifier"],  # type: ignore[arg-type]
        bool(_WORKER_STATE["keep_possible"]),
    )


def _init_shard_worker(
    factory: ShardRuntimeFactory,
    ods: Sequence[ObjectDescription],
    keep_possible: bool,
    batch_size: int,
) -> None:
    classifier, source = factory(ods)
    _WORKER_STATE["ods"] = ods
    _WORKER_STATE["by_id"] = {od.object_id: od for od in ods}
    _WORKER_STATE["classifier"] = classifier
    _WORKER_STATE["source"] = source
    _WORKER_STATE["keep_possible"] = keep_possible
    _WORKER_STATE["batch_size"] = batch_size


def _filter_shard_in_worker(shard_id: int) -> list[ObjectDecision]:
    """Decide f(OD_i) for the objects one filter shard owns.

    The worker's own index answers the similar-value searches, so each
    shard pays ~1/shard_count of the filter pass the parent used to run
    serially — and warms the worker's similar-value caches for the pair
    enumeration that follows.
    """
    source = _WORKER_STATE["source"]
    decider = source.object_filter  # type: ignore[union-attr]
    ods = _WORKER_STATE["ods"]
    owned = owned_filter_objects(ods, shard_id, source.shard_count)  # type: ignore[arg-type,union-attr]
    return [decider(od) for od in owned]


def _score_shard_in_worker(
    task: tuple[int, frozenset[int] | None],
) -> tuple[list[ScoredPair], int]:
    """Enumerate and classify one shard entirely inside the worker.

    ``task`` carries the shard id plus, for worker-filtered runs, the
    merged **pruned** ids of the filter phase (``None`` when the filter
    already ran — or is disabled — in the parent).  The pruned set is
    the compact complement of the kept set (most objects survive the
    filter), so it is what crosses the process boundary; the worker
    derives the kept ids from its own OD instance and installs them —
    once, on its first pair-shard task: the pool lives for one run and
    every task of a run carries the identical pruned set, so an
    already-installed source keeps the source from lazily re-running
    its own full filter pass on later tasks for free.
    """
    shard_id, pruned_ids = task
    source = _WORKER_STATE["source"]
    if pruned_ids is not None and source.kept_ids is None:  # type: ignore[union-attr]
        source.kept_ids = frozenset(  # type: ignore[union-attr]
            od.object_id
            for od in _WORKER_STATE["ods"]  # type: ignore[union-attr]
            if od.object_id not in pruned_ids
        )
    ods = _WORKER_STATE["ods"]
    by_id = _WORKER_STATE["by_id"]
    classifier = _WORKER_STATE["classifier"]
    keep_possible = bool(_WORKER_STATE["keep_possible"])
    kept: list[ScoredPair] = []
    compared = 0
    pair_stream = source.shard_pairs(ods, shard_id)  # type: ignore[union-attr]
    for batch in chunked(pair_stream, int(_WORKER_STATE["batch_size"])):  # type: ignore[arg-type]
        compared += len(batch)
        kept.extend(score_batch(batch, by_id, classifier, keep_possible))  # type: ignore[arg-type]
    return kept, compared


class ParallelClassifier:
    """Executes step 5 over pair batches, serially or across processes.

    Parameters
    ----------
    classifier:
        The live classifier (always used by the serial backend).
    policy:
        Execution policy; serial single-worker when omitted.
    classifier_factory:
        Picklable ``factory(ods) -> classifier`` rebuilding the
        classifier inside each worker.  Defaults to shipping
        ``classifier`` itself.
    shard_factory:
        Picklable :class:`~repro.engine.sharder.ShardRuntimeFactory`
        building classifier *and* shardable pair source inside each
        worker; required for worker-side pair generation under the
        ``shard`` backend.  Without one, a picklable
        :class:`~repro.engine.sharder.ShardablePairSource` passed to
        :meth:`run` is shipped by value; failing that the shard backend
        degrades to parent-side enumeration (process, then serial).
    keep_possible:
        Materialize C2 ("possible duplicates") pairs in the result.
    """

    def __init__(
        self,
        classifier: Classifier,
        policy: ExecutionPolicy | None = None,
        classifier_factory: ClassifierFactory | None = None,
        keep_possible: bool = True,
        shard_factory: ShardRuntimeFactory | None = None,
    ) -> None:
        self.classifier = classifier
        self.policy = policy or ExecutionPolicy()
        self.classifier_factory = classifier_factory
        self.shard_factory = shard_factory
        self.keep_possible = keep_possible
        #: Backend that actually ran the last :meth:`run` call.
        self.last_backend: str | None = None

    # ------------------------------------------------------------------
    def run(
        self,
        ods: Sequence[ObjectDescription],
        pair_source: PairSource,
    ) -> tuple[list[ScoredPair], int]:
        """Classify every pair the source yields.

        Returns ``(kept_pairs, compared_count)``.  Under the serial and
        process backends ``kept_pairs`` follows the source's pair
        order; under the shard backend it follows shard order (the
        pipeline canonicalizes result order, so downstream results are
        identical either way).
        """
        if self.policy.backend == "shard" and self.policy.workers > 1:
            factory = self._resolve_shard_factory(pair_source)
            if factory is not None and _picklable(factory):
                return self._run_shard(ods, factory, pair_source)
        batches = PairBatcher(self.policy.batch_size).batches(pair_source, ods)
        if self.policy.parallel:
            factory = self.classifier_factory or ConstantClassifierFactory(
                self.classifier
            )
            if _picklable(factory):
                return self._run_process(ods, batches, factory)
        return self._run_serial(ods, batches)

    def _resolve_shard_factory(
        self, pair_source: PairSource
    ) -> ShardRuntimeFactory | None:
        if self.shard_factory is not None:
            return self.shard_factory
        if (
            hasattr(pair_source, "shard_pairs")
            and getattr(pair_source, "shard_count", 0) >= 1
        ):
            classifier_factory = self.classifier_factory or (
                ConstantClassifierFactory(self.classifier)
            )
            return AssembledShardFactory(classifier_factory, pair_source)  # type: ignore[arg-type]
        return None

    # ------------------------------------------------------------------
    def _run_serial(
        self,
        ods: Sequence[ObjectDescription],
        batches: Iterable[list[tuple[int, int]]],
    ) -> tuple[list[ScoredPair], int]:
        self.last_backend = "serial"
        by_id = {od.object_id: od for od in ods}
        pairs: list[ScoredPair] = []
        compared = 0
        for batch in batches:
            compared += len(batch)
            pairs.extend(
                score_batch(batch, by_id, self.classifier, self.keep_possible)
            )
        return pairs, compared

    def _run_process(
        self,
        ods: Sequence[ObjectDescription],
        batches: Iterable[list[tuple[int, int]]],
        factory: ClassifierFactory,
    ) -> tuple[list[ScoredPair], int]:
        self.last_backend = "process"
        payload = bare_ods(ods)
        pairs: list[ScoredPair] = []
        batch_sizes: list[int] = []

        def counted() -> Iterable[list[tuple[int, int]]]:
            for batch in batches:
                batch_sizes.append(len(batch))
                yield batch

        context = multiprocessing.get_context()
        with context.Pool(
            processes=self.policy.workers,
            initializer=_init_worker,
            initargs=(factory, payload, self.keep_possible),
        ) as pool:
            # imap (not map): streams batches as workers free up while
            # preserving batch order in the results.
            for scored in pool.imap(_score_batch_in_worker, counted()):
                pairs.extend(scored)
        return pairs, sum(batch_sizes)

    def _run_shard(
        self,
        ods: Sequence[ObjectDescription],
        factory: ShardRuntimeFactory,
        pair_source: PairSource,
    ) -> tuple[list[ScoredPair], int]:
        """Worker-side pair generation: ship shard ids, not pair batches.

        When the factory evaluates the object filter in the workers
        (``filters_objects``), a filter phase precedes enumeration:
        each worker decides the objects of its filter shards, the
        parent merges the decisions back into **candidate order** (the
        order the serial parent-side pass would have produced), and
        the merged pruned ids — the compact complement of the kept set
        — ride along with every pair-shard task.
        The merged decisions are also installed on the parent-side
        ``pair_source`` so the pipeline reports the same
        ``pruned_object_ids`` as every other backend.
        """
        self.last_backend = "shard"
        payload = bare_ods(ods)
        pairs: list[ScoredPair] = []
        compared = 0
        context = multiprocessing.get_context()
        with context.Pool(
            processes=self.policy.workers,
            initializer=_init_shard_worker,
            initargs=(factory, payload, self.keep_possible, self.policy.batch_size),
        ) as pool:
            pruned_ids: frozenset[int] | None = None
            if getattr(factory, "filters_objects", False):
                decisions_by_id: dict[int, ObjectDecision] = {}
                for shard_decisions in pool.imap(
                    _filter_shard_in_worker, range(factory.shard_count)
                ):
                    for decision in shard_decisions:
                        decisions_by_id[decision.object_id] = decision
                merged = [decisions_by_id[od.object_id] for od in ods]
                pruned_ids = frozenset(
                    decision.object_id
                    for decision in merged
                    if not decision.kept
                )
                adopt = getattr(pair_source, "adopt_filter_decisions", None)
                if adopt is not None:
                    adopt(merged)
            # imap over shard ids: workers pull shards as they free up
            # (more shards than workers -> dynamic balancing of uneven
            # blocks) while results arrive in deterministic shard order.
            for kept, shard_compared in pool.imap(
                _score_shard_in_worker,
                (
                    (shard_id, pruned_ids)
                    for shard_id in range(factory.shard_count)
                ),
            ):
                pairs.extend(kept)
                compared += shard_compared
        return pairs, compared


def _picklable(value: object) -> bool:
    """Can ``value`` cross a process boundary on any start method?"""
    try:
        pickle.dumps(value)
    except Exception:
        return False
    return True
