"""Batched pair classification across workers (pipeline step 5).

The :class:`ParallelClassifier` executes the classification of candidate
pairs over the batches a :class:`~repro.engine.batcher.PairBatcher`
produces.  Two backends share the scoring code path:

* **serial** — batches are classified in-process; this is the
  zero-dependency fallback and, by construction, the ``workers=1`` case
  of the batched path;
* **process** — batches fan out over a ``multiprocessing`` pool.  A
  worker initializer receives the full (element-stripped) OD instance
  once and builds the classifier there — for DogmatiX that means one
  :class:`~repro.core.index.CorpusIndex` per worker, not per pair.
  Batch payloads are plain id pairs; results are the kept
  :class:`~repro.framework.result.ScoredPair` lists, concatenated in
  batch order so every backend yields the identical pair sequence.

Classifier construction inside workers goes through a *classifier
factory*: a picklable callable ``factory(ods) -> classifier``.  When no
factory is given the live classifier itself is shipped (fine for
stateless classifiers); if that is not picklable the executor silently
falls back to the serial backend rather than failing.

**Process-backend contract:** worker-side classifiers see
element-stripped ODs — ``object_id`` and the OD tuples only, with
``od.element`` always ``None`` (see :func:`bare_ods`).  Every
classifier in this repository (DogmatiX, the baselines) scores from
tuples alone, but a custom classifier that consults ``od.element``
must stay on the serial backend, or it will diverge from serial
results.
"""

from __future__ import annotations

import multiprocessing
import pickle
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..framework.classifier import Classifier, DUPLICATES, POSSIBLE_DUPLICATES
from ..framework.od import ObjectDescription
from ..framework.pruning import PairSource
from ..framework.result import ScoredPair
from .batcher import PairBatcher
from .policy import ExecutionPolicy

#: ``factory(ods) -> classifier``; must be picklable for the process
#: backend (module-level callables and frozen dataclasses qualify).
ClassifierFactory = Callable[[Sequence[ObjectDescription]], Classifier]


def score_batch(
    batch: Iterable[tuple[int, int]],
    by_id: dict[int, ObjectDescription],
    classifier: Classifier,
    keep_possible: bool,
) -> list[ScoredPair]:
    """Classify one batch; return only the pairs worth materializing.

    Non-duplicate pairs are dropped here (the paper's Step 5 note), so
    worker -> parent result payloads stay proportional to duplicates,
    not to comparisons.
    """
    scorer = getattr(classifier, "score_and_classify", None)
    kept: list[ScoredPair] = []
    for left, right in batch:
        if scorer is not None:  # one similarity evaluation per pair
            score, label = scorer(by_id[left], by_id[right])
        else:
            score, label = 1.0, classifier.classify(by_id[left], by_id[right])
        if label == DUPLICATES or (label == POSSIBLE_DUPLICATES and keep_possible):
            kept.append(ScoredPair(left, right, score, label))
    return kept


@dataclass(frozen=True)
class ConstantClassifierFactory:
    """Factory that ships a ready-made classifier to the workers."""

    classifier: Classifier

    def __call__(self, ods: Sequence[ObjectDescription]) -> Classifier:
        return self.classifier


def bare_ods(ods: Sequence[ObjectDescription]) -> list[ObjectDescription]:
    """Element-stripped copies for worker transmission.

    Classification needs only ``object_id`` and the OD tuples; XML
    elements (used for result XPaths in the parent) would bloat — and
    for deep trees endanger — the pickle payload.
    """
    return [ObjectDescription(od.object_id, od.tuples, None) for od in ods]


# ----------------------------------------------------------------------
# Worker-process state (one classifier per worker, built once)
# ----------------------------------------------------------------------
_WORKER_STATE: dict[str, object] = {}


def _init_worker(
    factory: ClassifierFactory,
    ods: Sequence[ObjectDescription],
    keep_possible: bool,
) -> None:
    _WORKER_STATE["by_id"] = {od.object_id: od for od in ods}
    _WORKER_STATE["classifier"] = factory(ods)
    _WORKER_STATE["keep_possible"] = keep_possible


def _score_batch_in_worker(batch: list[tuple[int, int]]) -> list[ScoredPair]:
    return score_batch(
        batch,
        _WORKER_STATE["by_id"],  # type: ignore[arg-type]
        _WORKER_STATE["classifier"],  # type: ignore[arg-type]
        bool(_WORKER_STATE["keep_possible"]),
    )


class ParallelClassifier:
    """Executes step 5 over pair batches, serially or across processes.

    Parameters
    ----------
    classifier:
        The live classifier (always used by the serial backend).
    policy:
        Execution policy; serial single-worker when omitted.
    classifier_factory:
        Picklable ``factory(ods) -> classifier`` rebuilding the
        classifier inside each worker.  Defaults to shipping
        ``classifier`` itself.
    keep_possible:
        Materialize C2 ("possible duplicates") pairs in the result.
    """

    def __init__(
        self,
        classifier: Classifier,
        policy: ExecutionPolicy | None = None,
        classifier_factory: ClassifierFactory | None = None,
        keep_possible: bool = True,
    ) -> None:
        self.classifier = classifier
        self.policy = policy or ExecutionPolicy()
        self.classifier_factory = classifier_factory
        self.keep_possible = keep_possible
        #: Backend that actually ran the last :meth:`run` call.
        self.last_backend: str | None = None

    # ------------------------------------------------------------------
    def run(
        self,
        ods: Sequence[ObjectDescription],
        pair_source: PairSource,
    ) -> tuple[list[ScoredPair], int]:
        """Classify every pair the source yields.

        Returns ``(kept_pairs, compared_count)`` with ``kept_pairs`` in
        the source's pair order regardless of backend.
        """
        batches = PairBatcher(self.policy.batch_size).batches(pair_source, ods)
        if self.policy.parallel:
            factory = self.classifier_factory or ConstantClassifierFactory(
                self.classifier
            )
            if _picklable(factory):
                return self._run_process(ods, batches, factory)
        return self._run_serial(ods, batches)

    # ------------------------------------------------------------------
    def _run_serial(
        self,
        ods: Sequence[ObjectDescription],
        batches: Iterable[list[tuple[int, int]]],
    ) -> tuple[list[ScoredPair], int]:
        self.last_backend = "serial"
        by_id = {od.object_id: od for od in ods}
        pairs: list[ScoredPair] = []
        compared = 0
        for batch in batches:
            compared += len(batch)
            pairs.extend(
                score_batch(batch, by_id, self.classifier, self.keep_possible)
            )
        return pairs, compared

    def _run_process(
        self,
        ods: Sequence[ObjectDescription],
        batches: Iterable[list[tuple[int, int]]],
        factory: ClassifierFactory,
    ) -> tuple[list[ScoredPair], int]:
        self.last_backend = "process"
        payload = bare_ods(ods)
        pairs: list[ScoredPair] = []
        batch_sizes: list[int] = []

        def counted() -> Iterable[list[tuple[int, int]]]:
            for batch in batches:
                batch_sizes.append(len(batch))
                yield batch

        context = multiprocessing.get_context()
        with context.Pool(
            processes=self.policy.workers,
            initializer=_init_worker,
            initargs=(factory, payload, self.keep_possible),
        ) as pool:
            # imap (not map): streams batches as workers free up while
            # preserving batch order in the results.
            for scored in pool.imap(_score_batch_in_worker, counted()):
                pairs.extend(scored)
        return pairs, sum(batch_sizes)


def _picklable(value: object) -> bool:
    """Can ``value`` cross a process boundary on any start method?"""
    try:
        pickle.dumps(value)
    except Exception:
        return False
    return True
