"""Sharded pair generation: step 4 partitioned across workers.

The serial and ``process`` backends enumerate candidate pairs in the
parent (:class:`~repro.framework.pruning.SharedTupleBlocking` et al.)
and at best parallelize classification.  This module makes *generation*
itself shardable: block structure is an independence boundary — pairs
from disjoint blocks can be enumerated and scored with no cross-talk —
so the blocking keys are partitioned into shards and each worker
enumerates only its own share.

Correctness hinges on two deterministic rules:

* **Shard assignment** uses :func:`stable_hash` (CRC-32 of the key's
  ``repr``) — Python's built-in ``hash`` is randomized per process and
  would scatter blocks differently in every worker.
* **Pair ownership**: one pair may appear in several blocks, possibly
  on different shards.  Pairs whose blocks all live on one shard are
  purely block-local; pairs whose blocks the shard assignment splits
  form the *cross-shard residual* and need a deterministic owner every
  worker can compute locally.  Two pairs of ownership rules apply in
  order: a pair whose objects share a **direct** term (same kind, same
  value — free to check, no similarity searches) belongs to its minimal
  direct common term; only a pair related exclusively through *similar*
  values falls back to the minimal common block key, which costs the
  similarity-expanded key sets of the two objects (lazy, memoized).
  Either way each pair is emitted exactly once, by exactly one shard,
  with no inter-worker communication.

The emitted pair *set* equals the wrapped blocking's pair set, and the
pipeline orders result pairs canonically, so the sharded backend is
bit-identical to serial for any shard count — the invariant
``tests/test_shard_equivalence.py`` fuzzes.

The **object filter** shards the same way (``filter_in_workers``): the
per-object f(OD_i) pass — whose similar-value searches dominate step 4
on large corpora — partitions candidates across shards by stable hash
(:func:`owned_filter_objects`), each worker decides its own objects
against its local index, and the parent merges the decisions back into
candidate order, so ``pruned_object_ids`` (and every downstream byte)
match the serial parent-side pass exactly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Protocol, Sequence, runtime_checkable

from ..framework.classifier import Classifier
from ..framework.od import ObjectDescription
from .policy import SHARD_MODES


def stable_hash(value: object) -> int:
    """Process-stable hash (CRC-32 over ``repr``).

    Built-in ``hash`` is seeded per interpreter for strings, so it can
    never be used to agree on shard assignment across worker processes.
    Block keys must therefore have a deterministic ``repr`` (strings,
    numbers, and tuples of those qualify).
    """
    if isinstance(value, bytes):
        data = value
    else:
        data = repr(value).encode("utf-8", "backslashreplace")
    return zlib.crc32(data)


@dataclass(frozen=True)
class PairShard:
    """One unit of worker-side pair generation."""

    shard_id: int
    shard_count: int

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {self.shard_count}")
        if not 0 <= self.shard_id < self.shard_count:
            raise ValueError(
                f"shard_id must be in [0, {self.shard_count}), got {self.shard_id}"
            )


@runtime_checkable
class ObjectDecision(Protocol):
    """What sharded filter evaluation needs of a per-object decision.

    Structurally satisfied by
    :class:`repro.core.object_filter.FilterDecision` — typed here so the
    engine stays import-free of :mod:`repro.core` (which imports the
    engine).
    """

    object_id: int
    kept: bool


#: Evaluates the object filter for one OD and returns its decision
#: (e.g. ``ObjectFilter.decide``).  Must be deterministic: every worker
#: and the parent fallback must reach identical decisions.
ObjectDecider = Callable[[ObjectDescription], ObjectDecision]


def owned_filter_objects(
    ods: Sequence[ObjectDescription], shard_id: int, shard_count: int
) -> list[ObjectDescription]:
    """The candidate objects one filter shard owns.

    Object-filter evaluation is a per-object pass, so its sharding is
    simpler than pair ownership: each object belongs to exactly one
    shard by process-stable hash of its id.  Every worker and the
    parent agree on the partition with no communication, and the union
    over ``range(shard_count)`` is exactly ``ods``.
    """
    PairShard(shard_id, shard_count)  # validates the id
    return [
        od for od in ods if stable_hash(od.object_id) % shard_count == shard_id
    ]


@runtime_checkable
class BlockIndex(Protocol):
    """Inverted view of a blocking structure.

    ``block_terms()`` yields every candidate block key; ``block_members``
    resolves one key to its member object ids; ``od_terms`` gives one
    object's *direct* terms (no similarity expansion — must be cheap);
    ``block_keys`` gives the object's full similarity-expanded key set.
    The contracts tying them together:

    * ``object_id in block_members(term)`` iff ``term in block_keys(od)``;
    * ``od_terms(od)`` is a subset of ``block_keys(od)`` whenever the
      object appears in any block (self-similarity).

    :class:`repro.core.index.CorpusIndex` satisfies this with one
    similar-value search per term — which is what lets a shard resolve
    *only its own* blocks instead of rebuilding the full structure.
    """

    def block_terms(self) -> Iterable[object]: ...  # pragma: no cover

    def block_members(
        self, term: object
    ) -> Iterable[int]: ...  # pragma: no cover

    def od_terms(
        self, od: ObjectDescription
    ) -> Iterable[object]: ...  # pragma: no cover

    def block_keys(
        self, od: ObjectDescription
    ) -> Iterable[object]: ...  # pragma: no cover


@runtime_checkable
class ShardablePairSource(Protocol):
    """A pair source whose enumeration partitions into disjoint shards.

    ``pairs()`` (the plain :class:`~repro.framework.pruning.PairSource`
    protocol) must equal the concatenation of ``shard_pairs(ods, s)``
    for ``s`` in ``range(shard_count)``; the shards' pair sets must be
    pairwise disjoint.
    """

    shard_count: int

    def pairs(
        self, ods: Sequence[ObjectDescription]
    ) -> Iterator[tuple[int, int]]: ...  # pragma: no cover - protocol

    def shard_pairs(
        self, ods: Sequence[ObjectDescription], shard_id: int
    ) -> Iterator[tuple[int, int]]: ...  # pragma: no cover - protocol


class ShardRuntimeFactory(Protocol):
    """Builds, inside a worker, everything one shard run needs.

    Must be picklable; called once per worker (by the pool initializer)
    with the full element-stripped OD instance.  Returns the classifier
    and the shardable pair source — built together so implementations
    can share one expensive substrate (for DogmatiX: one
    :class:`~repro.core.index.CorpusIndex` drives both similarity and
    blocking keys).

    A factory that also evaluates the object filter inside the workers
    advertises it with a truthy ``filters_objects`` attribute and
    attaches an :data:`ObjectDecider` to the returned source's
    ``object_filter``; the executor then runs a filter phase (each
    worker decides its :func:`owned_filter_objects`) before pair
    enumeration and merges the decisions in candidate order.
    """

    shard_count: int

    def __call__(
        self, ods: Sequence[ObjectDescription]
    ) -> tuple[Classifier, ShardablePairSource]: ...  # pragma: no cover


class ShardedPairSource:
    """Partitions candidate-pair enumeration into deterministic shards.

    Parameters
    ----------
    shard_count:
        Number of shards; enumeration order is shard 0 .. N-1 when used
        as a plain serial :class:`PairSource`.
    block_index:
        A :class:`BlockIndex` (e.g. the DogmatiX
        :class:`~repro.core.index.CorpusIndex`).  A shard resolves the
        members of *its own* block terms only — under
        ``shard_by="block"`` that is one similar-value search per owned
        term, about ``1/shard_count`` of the work a parent-side
        blocking pass performs.  Ownership of pairs the blocking key
        splits across shards resolves through direct terms first (free)
        and lazily memoized expanded key sets only for similar-valued
        pairs.  ``None`` means all pairs (the quadratic baseline),
        sharded by object rows.
    shard_by:
        ``"block"`` — blocks are hashed onto shards and each shard
        enumerates only its own blocks; ``"object"`` — ownership is
        hashed per pair, so even one giant block spreads evenly (at the
        cost of every shard walking the full block structure).
    kept_ids:
        Object-filter survivors; ``None`` disables filtering (unless
        ``object_filter`` is given).  Pass pre-computed ids when the
        caller already ran the filter; only enumeration is restricted
        here.
    pruned_ids:
        Ids the caller's object filter pruned, carried for the
        pipeline's :class:`~repro.framework.result.DetectionResult`
        (mirrors ``ObjectFilterPruning.pruned_ids``).
    object_filter:
        An :data:`ObjectDecider` evaluating f(OD_i), for runs whose
        filter decisions are *not* pre-computed.  Two uses: (a) a
        worker evaluates it over the objects of one filter shard
        (:func:`owned_filter_objects`) and ships the decisions back;
        (b) the serial fallback — when no pool ever forms — evaluates
        it lazily over all candidates, in candidate order, on first
        enumeration.  Either way :meth:`adopt_filter_decisions`
        installs the merged outcome, after which ``kept_ids`` /
        ``pruned_ids`` / ``filter_decisions`` read exactly like a
        parent-side pass.
    """

    def __init__(
        self,
        shard_count: int,
        block_index: BlockIndex | None = None,
        shard_by: str = "block",
        kept_ids: Iterable[int] | None = None,
        pruned_ids: Iterable[int] = (),
        object_filter: ObjectDecider | None = None,
    ) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        if shard_by not in SHARD_MODES:
            raise ValueError(
                f"shard_by must be one of {SHARD_MODES}, got {shard_by!r}"
            )
        self.shard_count = shard_count
        self.block_index = block_index
        self.shard_by = shard_by
        self.kept_ids = None if kept_ids is None else frozenset(kept_ids)
        self.pruned_ids = list(pruned_ids)
        self.object_filter = object_filter
        #: Filter decisions in candidate order, once evaluated/adopted.
        self.filter_decisions: list[ObjectDecision] = []
        # Ownership memos, shared across shards and calls (both depend
        # only on the provider): per-object direct terms (cheap) and
        # similarity-expanded key sets (searches; resolved lazily, only
        # for pairs without a direct common term).
        self._od_direct: dict[int, frozenset[str]] = {}
        self._od_keys: dict[int, frozenset[str]] = {}
        # Canonically sorted block terms (a worker serves several
        # shards; the term universe is fixed per provider).
        self._terms: list[tuple[str, object]] | None = None

    # ------------------------------------------------------------------
    # PairSource protocol (serial / parent-side use)
    # ------------------------------------------------------------------
    def pairs(self, ods: Sequence[ObjectDescription]) -> Iterator[tuple[int, int]]:
        """All pairs, shard by shard (the serial view of this source).

        A filter-carrying source re-evaluates its filter here, eagerly,
        for *this* call's candidate set — like
        :class:`~repro.framework.pruning.ObjectFilterPruning`, a reused
        source must neither report a previous run's pruned ids nor
        enumerate against its stale kept set, and an undrained stream
        must still leave the filter outcome readable.  (Worker-side
        enumeration goes through :meth:`shard_pairs` directly, where
        the merged kept ids of the pool's filter phase are installed
        beforehand and must survive.)
        """
        if self.object_filter is not None:
            self.kept_ids = None
            self.pruned_ids = []
            self.filter_decisions = []
            self._ensure_filtered(ods)
        return self._all_shards(ods)

    def _all_shards(
        self, ods: Sequence[ObjectDescription]
    ) -> Iterator[tuple[int, int]]:
        for shard_id in range(self.shard_count):
            yield from self.shard_pairs(ods, shard_id)

    # ------------------------------------------------------------------
    # Shard-local enumeration
    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # Object-filter evaluation (worker-sharded or lazy serial fallback)
    # ------------------------------------------------------------------
    def adopt_filter_decisions(self, decisions: Iterable[ObjectDecision]) -> None:
        """Install filter decisions merged elsewhere (candidate order).

        Overwrites ``kept_ids``/``pruned_ids``: the decisions *are* the
        filter outcome, whether a pool merged per-shard results or the
        serial fallback just evaluated them here.
        """
        self.filter_decisions = list(decisions)
        self.kept_ids = frozenset(
            decision.object_id
            for decision in self.filter_decisions
            if decision.kept
        )
        self.pruned_ids = [
            decision.object_id
            for decision in self.filter_decisions
            if not decision.kept
        ]

    def _ensure_filtered(self, ods: Sequence[ObjectDescription]) -> None:
        """Serial fallback: run the pending filter pass in this process.

        Only fires when an :data:`ObjectDecider` was supplied but no
        ``kept_ids`` exist yet — i.e. no worker pool ran the sharded
        pass (``workers=1``, or an unpicklable runtime degraded to
        parent-side enumeration).  Evaluates in candidate order, like
        the classic parent-side pass, so ``pruned_ids`` stay
        bit-identical across execution modes.
        """
        if self.object_filter is None or self.kept_ids is not None:
            return
        self.adopt_filter_decisions(self.object_filter(od) for od in ods)

    def shard_pairs(
        self, ods: Sequence[ObjectDescription], shard_id: int
    ) -> Iterator[tuple[int, int]]:
        """The pairs shard ``shard_id`` owns, exactly once each.

        Validation and the pending filter pass run eagerly (not at
        first ``next()``), so ``pruned_ids`` are correct as soon as
        this returns — even for a stream that is never drained.
        """
        PairShard(shard_id, self.shard_count)  # validates the id
        self._ensure_filtered(ods)
        kept = (
            list(ods)
            if self.kept_ids is None
            else [od for od in ods if od.object_id in self.kept_ids]
        )
        if self.block_index is not None:
            return self._block_shard(kept, shard_id)
        return self._all_pairs_shard(kept, shard_id)

    def _shard_of_key(self, canon_key: str) -> int:
        return stable_hash(canon_key) % self.shard_count

    def _shard_of_pair(self, a: int, b: int) -> int:
        return stable_hash(b"%d:%d" % (a, b)) % self.shard_count

    # -- all-pairs (no blocking) ---------------------------------------
    def _all_pairs_shard(
        self, kept: Sequence[ObjectDescription], shard_id: int
    ) -> Iterator[tuple[int, int]]:
        ids = [od.object_id for od in kept]
        if self.shard_by == "object":
            for a in range(len(ids)):
                for b in range(a + 1, len(ids)):
                    if self._shard_of_pair(ids[a], ids[b]) == shard_id:
                        yield ids[a], ids[b]
        else:  # row sharding: shard owns the rows of its left objects
            for a in range(len(ids)):
                if stable_hash(ids[a]) % self.shard_count != shard_id:
                    continue
                for b in range(a + 1, len(ids)):
                    yield ids[a], ids[b]

    # -- blocking (inverted provider; one search per owned term) -------
    def _od_canon_direct(self, od: ObjectDescription) -> frozenset[str]:
        assert self.block_index is not None
        cached = self._od_direct.get(od.object_id)
        if cached is None:
            cached = frozenset(
                repr(term) for term in set(self.block_index.od_terms(od))
            )
            self._od_direct[od.object_id] = cached
        return cached

    def _od_canon_keys(self, od: ObjectDescription) -> frozenset[str]:
        assert self.block_index is not None
        cached = self._od_keys.get(od.object_id)
        if cached is None:
            cached = frozenset(
                repr(key) for key in set(self.block_index.block_keys(od))
            )
            self._od_keys[od.object_id] = cached
        return cached

    def _owner_key(self, od_a: ObjectDescription, od_b: ObjectDescription) -> str:
        """The canonical key of the block that owns this pair.

        Ownership must be a pure function of the pair so that every
        block enumerating it — on any shard — agrees without
        communication.  ``repr`` canonicalization gives keys a total
        order and a process-stable hash input independent of their
        type.  Two tiers, by cost: a direct common term (same kind,
        same value; no searches) wins if one exists — in realistic
        corpora that covers almost every blocked pair — else the pair
        is related through similar values only and its minimal common
        *expanded* key decides, paying the two objects' memoized
        similarity-expanded key sets.
        """
        direct = self._od_canon_direct(od_a) & self._od_canon_direct(od_b)
        if direct:
            return min(direct)
        return min(self._od_canon_keys(od_a) & self._od_canon_keys(od_b))

    def _block_shard(
        self, kept: Sequence[ObjectDescription], shard_id: int
    ) -> Iterator[tuple[int, int]]:
        """Enumerate via :class:`BlockIndex`: resolve owned terms only.

        Under ``shard_by="block"`` a shard touches just the terms that
        hash to it — ~``1/shard_count`` of the similar-value searches.
        ``shard_by="object"`` walks every term (ownership is per pair),
        trading that saving for balance under block skew.
        """
        index = self.block_index
        assert index is not None
        kept_by_id = {od.object_id: od for od in kept}
        by_pair = self.shard_by == "object"
        if self._terms is None:
            self._terms = sorted(
                (repr(term), term) for term in index.block_terms()
            )
        for canon_key, term in self._terms:
            if not by_pair and self._shard_of_key(canon_key) != shard_id:
                continue
            members = sorted(
                member
                for member in index.block_members(term)
                if member in kept_by_id
            )
            for a in range(len(members)):
                od_a = kept_by_id[members[a]]
                for b in range(a + 1, len(members)):
                    # Cheap per-pair hash filter first (object mode
                    # walks every block on every shard, so ~(W-1)/W of
                    # the pairs are discarded here before the ownership
                    # computation).
                    if by_pair and self._shard_of_pair(
                        members[a], members[b]
                    ) != shard_id:
                        continue
                    # Emitting only at the pair's owner block dedups
                    # across blocks — both within this shard and across
                    # shards (the cross-shard residual) — without any
                    # set of seen pairs.
                    if self._owner_key(od_a, kept_by_id[members[b]]) != canon_key:
                        continue
                    yield members[a], members[b]

    def __repr__(self) -> str:
        mode = "all-pairs" if self.block_index is None else "blocking"
        return (
            f"<ShardedPairSource {mode} shard_by={self.shard_by!r} "
            f"shards={self.shard_count}>"
        )


@dataclass(frozen=True)
class AssembledShardFactory:
    """Shard runtime from independent classifier-factory + source parts.

    The executor uses this when a pipeline provides a picklable
    :class:`ShardablePairSource` but no combined
    :class:`ShardRuntimeFactory`.  Prefer a combined factory when the
    classifier and the source share an expensive substrate — this
    assembly ships the source by value, which for index-backed blocking
    means pickling the index.
    """

    classifier_factory: Callable[[Sequence[ObjectDescription]], Classifier]
    source: ShardablePairSource

    @property
    def shard_count(self) -> int:
        return self.source.shard_count

    @property
    def filters_objects(self) -> bool:
        """Worker-side filter evaluation, iff the source carries one."""
        return getattr(self.source, "object_filter", None) is not None

    def __call__(
        self, ods: Sequence[ObjectDescription]
    ) -> tuple[Classifier, ShardablePairSource]:
        return self.classifier_factory(ods), self.source
