"""Sharded pair generation: step 4 partitioned across workers.

The serial and ``process`` backends enumerate candidate pairs in the
parent (:class:`~repro.framework.pruning.SharedTupleBlocking` et al.)
and at best parallelize classification.  This module makes *generation*
itself shardable: block structure is an independence boundary — pairs
from disjoint blocks can be enumerated and scored with no cross-talk —
so the blocking keys are partitioned into shards and each worker
enumerates only its own share.

Correctness hinges on two deterministic rules:

* **Shard assignment** uses :func:`stable_hash` (CRC-32 of the key's
  ``repr``) — Python's built-in ``hash`` is randomized per process and
  would scatter blocks differently in every worker.
* **Pair ownership**: one pair may appear in several blocks, possibly
  on different shards.  Pairs whose blocks all live on one shard are
  purely block-local; pairs whose blocks the shard assignment splits
  form the *cross-shard residual* and need a deterministic owner every
  worker can compute locally.  Two pairs of ownership rules apply in
  order: a pair whose objects share a **direct** term (same kind, same
  value — free to check, no similarity searches) belongs to its minimal
  direct common term; only a pair related exclusively through *similar*
  values falls back to the minimal common block key, which costs the
  similarity-expanded key sets of the two objects (lazy, memoized).
  Either way each pair is emitted exactly once, by exactly one shard,
  with no inter-worker communication.

The emitted pair *set* equals the wrapped blocking's pair set, and the
pipeline orders result pairs canonically, so the sharded backend is
bit-identical to serial for any shard count — the invariant
``tests/test_shard_equivalence.py`` fuzzes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Protocol, Sequence, runtime_checkable

from ..framework.classifier import Classifier
from ..framework.od import ObjectDescription
from .policy import SHARD_MODES


def stable_hash(value: object) -> int:
    """Process-stable hash (CRC-32 over ``repr``).

    Built-in ``hash`` is seeded per interpreter for strings, so it can
    never be used to agree on shard assignment across worker processes.
    Block keys must therefore have a deterministic ``repr`` (strings,
    numbers, and tuples of those qualify).
    """
    if isinstance(value, bytes):
        data = value
    else:
        data = repr(value).encode("utf-8", "backslashreplace")
    return zlib.crc32(data)


@dataclass(frozen=True)
class PairShard:
    """One unit of worker-side pair generation."""

    shard_id: int
    shard_count: int

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {self.shard_count}")
        if not 0 <= self.shard_id < self.shard_count:
            raise ValueError(
                f"shard_id must be in [0, {self.shard_count}), got {self.shard_id}"
            )


@runtime_checkable
class BlockIndex(Protocol):
    """Inverted view of a blocking structure.

    ``block_terms()`` yields every candidate block key; ``block_members``
    resolves one key to its member object ids; ``od_terms`` gives one
    object's *direct* terms (no similarity expansion — must be cheap);
    ``block_keys`` gives the object's full similarity-expanded key set.
    The contracts tying them together:

    * ``object_id in block_members(term)`` iff ``term in block_keys(od)``;
    * ``od_terms(od)`` is a subset of ``block_keys(od)`` whenever the
      object appears in any block (self-similarity).

    :class:`repro.core.index.CorpusIndex` satisfies this with one
    similar-value search per term — which is what lets a shard resolve
    *only its own* blocks instead of rebuilding the full structure.
    """

    def block_terms(self) -> Iterable[object]: ...  # pragma: no cover

    def block_members(
        self, term: object
    ) -> Iterable[int]: ...  # pragma: no cover

    def od_terms(
        self, od: ObjectDescription
    ) -> Iterable[object]: ...  # pragma: no cover

    def block_keys(
        self, od: ObjectDescription
    ) -> Iterable[object]: ...  # pragma: no cover


@runtime_checkable
class ShardablePairSource(Protocol):
    """A pair source whose enumeration partitions into disjoint shards.

    ``pairs()`` (the plain :class:`~repro.framework.pruning.PairSource`
    protocol) must equal the concatenation of ``shard_pairs(ods, s)``
    for ``s`` in ``range(shard_count)``; the shards' pair sets must be
    pairwise disjoint.
    """

    shard_count: int

    def pairs(
        self, ods: Sequence[ObjectDescription]
    ) -> Iterator[tuple[int, int]]: ...  # pragma: no cover - protocol

    def shard_pairs(
        self, ods: Sequence[ObjectDescription], shard_id: int
    ) -> Iterator[tuple[int, int]]: ...  # pragma: no cover - protocol


class ShardRuntimeFactory(Protocol):
    """Builds, inside a worker, everything one shard run needs.

    Must be picklable; called once per worker (by the pool initializer)
    with the full element-stripped OD instance.  Returns the classifier
    and the shardable pair source — built together so implementations
    can share one expensive substrate (for DogmatiX: one
    :class:`~repro.core.index.CorpusIndex` drives both similarity and
    blocking keys).
    """

    shard_count: int

    def __call__(
        self, ods: Sequence[ObjectDescription]
    ) -> tuple[Classifier, ShardablePairSource]: ...  # pragma: no cover


class ShardedPairSource:
    """Partitions candidate-pair enumeration into deterministic shards.

    Parameters
    ----------
    shard_count:
        Number of shards; enumeration order is shard 0 .. N-1 when used
        as a plain serial :class:`PairSource`.
    block_index:
        A :class:`BlockIndex` (e.g. the DogmatiX
        :class:`~repro.core.index.CorpusIndex`).  A shard resolves the
        members of *its own* block terms only — under
        ``shard_by="block"`` that is one similar-value search per owned
        term, about ``1/shard_count`` of the work a parent-side
        blocking pass performs.  Ownership of pairs the blocking key
        splits across shards resolves through direct terms first (free)
        and lazily memoized expanded key sets only for similar-valued
        pairs.  ``None`` means all pairs (the quadratic baseline),
        sharded by object rows.
    shard_by:
        ``"block"`` — blocks are hashed onto shards and each shard
        enumerates only its own blocks; ``"object"`` — ownership is
        hashed per pair, so even one giant block spreads evenly (at the
        cost of every shard walking the full block structure).
    kept_ids:
        Object-filter survivors; ``None`` disables filtering.  The
        filter decision itself stays in the caller (it needs the full
        corpus either way); only enumeration is restricted here.
    pruned_ids:
        Ids the caller's object filter pruned, carried for the
        pipeline's :class:`~repro.framework.result.DetectionResult`
        (mirrors ``ObjectFilterPruning.pruned_ids``).
    """

    def __init__(
        self,
        shard_count: int,
        block_index: BlockIndex | None = None,
        shard_by: str = "block",
        kept_ids: Iterable[int] | None = None,
        pruned_ids: Iterable[int] = (),
    ) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        if shard_by not in SHARD_MODES:
            raise ValueError(
                f"shard_by must be one of {SHARD_MODES}, got {shard_by!r}"
            )
        self.shard_count = shard_count
        self.block_index = block_index
        self.shard_by = shard_by
        self.kept_ids = None if kept_ids is None else frozenset(kept_ids)
        self.pruned_ids = list(pruned_ids)
        # Ownership memos, shared across shards and calls (both depend
        # only on the provider): per-object direct terms (cheap) and
        # similarity-expanded key sets (searches; resolved lazily, only
        # for pairs without a direct common term).
        self._od_direct: dict[int, frozenset[str]] = {}
        self._od_keys: dict[int, frozenset[str]] = {}
        # Canonically sorted block terms (a worker serves several
        # shards; the term universe is fixed per provider).
        self._terms: list[tuple[str, object]] | None = None

    # ------------------------------------------------------------------
    # PairSource protocol (serial / parent-side use)
    # ------------------------------------------------------------------
    def pairs(self, ods: Sequence[ObjectDescription]) -> Iterator[tuple[int, int]]:
        """All pairs, shard by shard (the serial view of this source)."""
        for shard_id in range(self.shard_count):
            yield from self.shard_pairs(ods, shard_id)

    # ------------------------------------------------------------------
    # Shard-local enumeration
    # ------------------------------------------------------------------
    def shard_pairs(
        self, ods: Sequence[ObjectDescription], shard_id: int
    ) -> Iterator[tuple[int, int]]:
        """The pairs shard ``shard_id`` owns, exactly once each."""
        PairShard(shard_id, self.shard_count)  # validates the id
        kept = (
            list(ods)
            if self.kept_ids is None
            else [od for od in ods if od.object_id in self.kept_ids]
        )
        if self.block_index is not None:
            yield from self._block_shard(kept, shard_id)
        else:
            yield from self._all_pairs_shard(kept, shard_id)

    def _shard_of_key(self, canon_key: str) -> int:
        return stable_hash(canon_key) % self.shard_count

    def _shard_of_pair(self, a: int, b: int) -> int:
        return stable_hash(b"%d:%d" % (a, b)) % self.shard_count

    # -- all-pairs (no blocking) ---------------------------------------
    def _all_pairs_shard(
        self, kept: Sequence[ObjectDescription], shard_id: int
    ) -> Iterator[tuple[int, int]]:
        ids = [od.object_id for od in kept]
        if self.shard_by == "object":
            for a in range(len(ids)):
                for b in range(a + 1, len(ids)):
                    if self._shard_of_pair(ids[a], ids[b]) == shard_id:
                        yield ids[a], ids[b]
        else:  # row sharding: shard owns the rows of its left objects
            for a in range(len(ids)):
                if stable_hash(ids[a]) % self.shard_count != shard_id:
                    continue
                for b in range(a + 1, len(ids)):
                    yield ids[a], ids[b]

    # -- blocking (inverted provider; one search per owned term) -------
    def _od_canon_direct(self, od: ObjectDescription) -> frozenset[str]:
        assert self.block_index is not None
        cached = self._od_direct.get(od.object_id)
        if cached is None:
            cached = frozenset(
                repr(term) for term in set(self.block_index.od_terms(od))
            )
            self._od_direct[od.object_id] = cached
        return cached

    def _od_canon_keys(self, od: ObjectDescription) -> frozenset[str]:
        assert self.block_index is not None
        cached = self._od_keys.get(od.object_id)
        if cached is None:
            cached = frozenset(
                repr(key) for key in set(self.block_index.block_keys(od))
            )
            self._od_keys[od.object_id] = cached
        return cached

    def _owner_key(self, od_a: ObjectDescription, od_b: ObjectDescription) -> str:
        """The canonical key of the block that owns this pair.

        Ownership must be a pure function of the pair so that every
        block enumerating it — on any shard — agrees without
        communication.  ``repr`` canonicalization gives keys a total
        order and a process-stable hash input independent of their
        type.  Two tiers, by cost: a direct common term (same kind,
        same value; no searches) wins if one exists — in realistic
        corpora that covers almost every blocked pair — else the pair
        is related through similar values only and its minimal common
        *expanded* key decides, paying the two objects' memoized
        similarity-expanded key sets.
        """
        direct = self._od_canon_direct(od_a) & self._od_canon_direct(od_b)
        if direct:
            return min(direct)
        return min(self._od_canon_keys(od_a) & self._od_canon_keys(od_b))

    def _block_shard(
        self, kept: Sequence[ObjectDescription], shard_id: int
    ) -> Iterator[tuple[int, int]]:
        """Enumerate via :class:`BlockIndex`: resolve owned terms only.

        Under ``shard_by="block"`` a shard touches just the terms that
        hash to it — ~``1/shard_count`` of the similar-value searches.
        ``shard_by="object"`` walks every term (ownership is per pair),
        trading that saving for balance under block skew.
        """
        index = self.block_index
        assert index is not None
        kept_by_id = {od.object_id: od for od in kept}
        by_pair = self.shard_by == "object"
        if self._terms is None:
            self._terms = sorted(
                (repr(term), term) for term in index.block_terms()
            )
        for canon_key, term in self._terms:
            if not by_pair and self._shard_of_key(canon_key) != shard_id:
                continue
            members = sorted(
                member
                for member in index.block_members(term)
                if member in kept_by_id
            )
            for a in range(len(members)):
                od_a = kept_by_id[members[a]]
                for b in range(a + 1, len(members)):
                    # Cheap per-pair hash filter first (object mode
                    # walks every block on every shard, so ~(W-1)/W of
                    # the pairs are discarded here before the ownership
                    # computation).
                    if by_pair and self._shard_of_pair(
                        members[a], members[b]
                    ) != shard_id:
                        continue
                    # Emitting only at the pair's owner block dedups
                    # across blocks — both within this shard and across
                    # shards (the cross-shard residual) — without any
                    # set of seen pairs.
                    if self._owner_key(od_a, kept_by_id[members[b]]) != canon_key:
                        continue
                    yield members[a], members[b]

    def __repr__(self) -> str:
        mode = "all-pairs" if self.block_index is None else "blocking"
        return (
            f"<ShardedPairSource {mode} shard_by={self.shard_by!r} "
            f"shards={self.shard_count}>"
        )


@dataclass(frozen=True)
class AssembledShardFactory:
    """Shard runtime from independent classifier-factory + source parts.

    The executor uses this when a pipeline provides a picklable
    :class:`ShardablePairSource` but no combined
    :class:`ShardRuntimeFactory`.  Prefer a combined factory when the
    classifier and the source share an expensive substrate — this
    assembly ships the source by value, which for index-backed blocking
    means pickling the index.
    """

    classifier_factory: Callable[[Sequence[ObjectDescription]], Classifier]
    source: ShardablePairSource

    @property
    def shard_count(self) -> int:
        return self.source.shard_count

    def __call__(
        self, ods: Sequence[ObjectDescription]
    ) -> tuple[Classifier, ShardablePairSource]:
        return self.classifier_factory(ods), self.source
