"""engine: batched, optionally parallel execution of pipeline step 5.

The architectural seam between *what* is compared (framework, core) and
*how* the comparisons run.  :class:`ExecutionPolicy` picks a backend and
its knobs, :class:`PairBatcher` turns any pair source into fixed-size
work units, and :class:`ParallelClassifier` executes them — serially or
across ``multiprocessing`` workers — with results guaranteed identical
to the serial order (see ``tests/test_engine_parallel.py``).
"""

from .batcher import PairBatcher, chunked
from .executor import (
    ClassifierFactory,
    ConstantClassifierFactory,
    ParallelClassifier,
    bare_ods,
    score_batch,
)
from .policy import BACKENDS, DEFAULT_BATCH_SIZE, ExecutionPolicy

__all__ = [
    "BACKENDS",
    "DEFAULT_BATCH_SIZE",
    "ClassifierFactory",
    "ConstantClassifierFactory",
    "ExecutionPolicy",
    "PairBatcher",
    "ParallelClassifier",
    "bare_ods",
    "chunked",
    "score_batch",
]
