"""engine: batched, optionally parallel execution of pipeline steps 4+5.

The architectural seam between *what* is compared (framework, core) and
*how* the comparisons run.  :class:`ExecutionPolicy` picks a backend and
its knobs, :class:`PairBatcher` turns any pair source into fixed-size
work units, :class:`ShardedPairSource` partitions pair *generation*
into deterministic shards, and :class:`ParallelClassifier` executes the
work — serially, across ``multiprocessing`` workers (parent-enumerated
batches), or sharded (worker-enumerated pairs) — with results
guaranteed identical to the serial order (see
``tests/test_engine_parallel.py`` and ``tests/test_shard_equivalence.py``).
"""

from .batcher import PairBatcher, chunked
from .executor import (
    ClassifierFactory,
    ConstantClassifierFactory,
    ParallelClassifier,
    bare_ods,
    score_batch,
)
from .policy import (
    BACKENDS,
    DEFAULT_BATCH_SIZE,
    SHARD_FACTOR,
    SHARD_MODES,
    ExecutionPolicy,
)
from .sharder import (
    AssembledShardFactory,
    ObjectDecider,
    ObjectDecision,
    PairShard,
    ShardablePairSource,
    ShardedPairSource,
    ShardRuntimeFactory,
    owned_filter_objects,
    stable_hash,
)

__all__ = [
    "AssembledShardFactory",
    "BACKENDS",
    "DEFAULT_BATCH_SIZE",
    "ClassifierFactory",
    "ConstantClassifierFactory",
    "ExecutionPolicy",
    "ObjectDecider",
    "ObjectDecision",
    "PairBatcher",
    "PairShard",
    "ParallelClassifier",
    "SHARD_FACTOR",
    "SHARD_MODES",
    "ShardablePairSource",
    "ShardedPairSource",
    "ShardRuntimeFactory",
    "bare_ods",
    "chunked",
    "owned_filter_objects",
    "score_batch",
    "stable_hash",
]
