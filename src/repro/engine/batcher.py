"""Pair batching: the unit of work of the classification engine.

A :class:`PairBatcher` drains any
:class:`~repro.framework.pruning.PairSource` (all-pairs, blocking,
filter pruning, ...) into fixed-size batches of ``(left, right)``
object-id pairs.  Batches preserve the source's pair order, so
concatenating per-batch results reproduces the serial pair order
exactly — the property the serial-equivalence tests pin down.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, TypeVar

from ..framework.od import ObjectDescription
from ..framework.pruning import PairSource
from .policy import DEFAULT_BATCH_SIZE

T = TypeVar("T")


def chunked(items: Iterable[T], size: int) -> Iterator[list[T]]:
    """Split any iterable into lists of at most ``size`` items."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    batch: list[T] = []
    for item in items:
        batch.append(item)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


class PairBatcher:
    """Drains a pair source into fixed-size batches."""

    def __init__(self, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size

    def batches(
        self, pair_source: PairSource, ods: Sequence[ObjectDescription]
    ) -> Iterator[list[tuple[int, int]]]:
        """Yield the source's pairs over ``ods`` in batch-size lists.

        The source generator runs in the calling process (pair
        generation may depend on parent-side state such as
        ``ObjectFilterPruning.pruned_ids``); only classification fans
        out to workers.
        """
        yield from chunked(pair_source.pairs(ods), self.batch_size)
