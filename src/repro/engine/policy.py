"""Execution policy: how step 5 (pairwise classification) is executed.

The detection pipeline is algorithm-agnostic about *what* it compares;
the execution policy makes it agnostic about *how*: one knob object
selects the backend (in-process serial or ``multiprocessing``), the
worker count, and the pair batch size that every backend consumes.
Serial execution is simply the one-worker case of the batched path, so
every mode shares one code path and one result format.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Supported execution backends.
#:
#: * ``serial``  — classify batches in-process (zero dependencies);
#: * ``process`` — fan batches out across ``multiprocessing`` workers.
BACKENDS = ("serial", "process")

DEFAULT_BATCH_SIZE = 256


@dataclass(frozen=True)
class ExecutionPolicy:
    """How classification work is scheduled.

    Attributes
    ----------
    workers:
        Worker processes for the ``process`` backend; must be >= 1.
        More than one worker requires ``backend="process"`` — a
        multi-worker serial policy would silently run single-process,
        so it is rejected (use :meth:`for_workers` to derive both
        fields from a count).
    batch_size:
        Pairs per batch handed to a worker (also the unit of the serial
        loop); must be >= 1.
    backend:
        ``"serial"`` or ``"process"``.
    """

    workers: int = 1
    batch_size: int = DEFAULT_BATCH_SIZE
    backend: str = "serial"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.workers > 1 and self.backend == "serial":
            raise ValueError(
                f"workers={self.workers} with backend='serial' would run "
                "single-process anyway; use backend='process' or "
                "ExecutionPolicy.for_workers()"
            )

    @classmethod
    def for_workers(
        cls, workers: int, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> "ExecutionPolicy":
        """Policy for a worker count: process-parallel when > 1.

        ``workers=0`` means "all available cores".
        """
        if workers == 0:
            workers = os.cpu_count() or 1
        return cls(
            workers=workers,
            batch_size=batch_size,
            backend="process" if workers > 1 else "serial",
        )

    @property
    def parallel(self) -> bool:
        """True iff this policy fans work out across processes."""
        return self.backend == "process" and self.workers > 1
