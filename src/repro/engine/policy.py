"""Execution policy: how steps 4+5 (pair generation and classification)
are executed.

The detection pipeline is algorithm-agnostic about *what* it compares;
the execution policy makes it agnostic about *how*: one knob object
selects the backend, the worker count, and the pair batch size that
every backend consumes.  Serial execution is simply the one-worker case
of the batched path, so every mode shares one code path and one result
format.

Backends differ in *where* work happens:

* ``serial`` and ``process`` enumerate candidate pairs in the parent
  (step 4) and only fan classification (step 5) out to workers;
* ``shard`` moves pair generation into the workers as well: each worker
  enumerates *and* classifies the pairs of its shards locally, so pair
  payloads never cross the process boundary (see
  :mod:`repro.engine.sharder`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Supported execution backends.
#:
#: * ``serial``  — classify batches in-process (zero dependencies);
#: * ``process`` — fan batches out across ``multiprocessing`` workers
#:   (pairs are enumerated in the parent and pickled to workers);
#: * ``shard``   — workers enumerate *and* classify their shards' pairs
#:   locally (worker-side pair generation; see ``engine.sharder``).
BACKENDS = ("serial", "process", "shard")

#: Sharding strategies of the ``shard`` backend.
#:
#: * ``block``  — blocking keys are hashed onto shards; each worker
#:   enumerates only the blocks of its shards (cheapest per worker,
#:   but a single giant block stays on one shard);
#: * ``object`` — ownership is hashed per pair; every worker enumerates
#:   the full block structure but classifies only its own pairs
#:   (balanced even under extreme block skew).
SHARD_MODES = ("block", "object")

DEFAULT_BATCH_SIZE = 256

#: Shards per worker under the ``shard`` backend.  More shards than
#: workers lets ``imap`` balance uneven blocks dynamically; results are
#: invariant under the shard count (pair ownership is deterministic and
#: results are canonically ordered), so this is purely a scheduling
#: knob.
SHARD_FACTOR = 4


@dataclass(frozen=True)
class ExecutionPolicy:
    """How detection work is scheduled.

    Attributes
    ----------
    workers:
        Worker processes for the ``process`` and ``shard`` backends;
        must be >= 1.  More than one worker requires a parallel
        backend — a multi-worker serial policy would silently run
        single-process, so it is rejected (use :meth:`for_workers` to
        derive both fields from a count).
    batch_size:
        Pairs per batch handed to a worker (also the unit of the serial
        loop and of the worker-local shard loop); must be >= 1.
    backend:
        ``"serial"``, ``"process"``, or ``"shard"``.
    shard_by:
        Sharding strategy for the ``shard`` backend (``"block"`` or
        ``"object"``); ignored by the other backends.
    filter_in_workers:
        Evaluate the object filter f(OD_i) *inside* the workers
        (``shard`` backend only): candidate objects are partitioned
        across shards by stable hash, each worker scores f over its
        own objects via its local index, and the parent merges the
        decisions in candidate order — removing the last serial
        parent-side pass of step 4.  Off by default; results are
        bit-identical either way (same decisions, same
        ``pruned_object_ids`` order).  Requires ``backend="shard"``:
        the serial and process backends enumerate in the parent, where
        a "worker-side" filter has no meaning.
    ingest_workers:
        Worker processes for *corpus construction* (pipeline steps 1-3
        plus index building; see :mod:`repro.ingest`): sources are
        parsed and object descriptions generated across a pool, each
        worker building a partial corpus index the parent merges.
        Independent of ``backend`` — ingestion runs before any pair is
        generated, so a serial detection backend may still ingest in
        parallel and vice versa.  ``1`` (the default) builds in the
        parent; results are identical either way.
    """

    workers: int = 1
    batch_size: int = DEFAULT_BATCH_SIZE
    backend: str = "serial"
    shard_by: str = "block"
    filter_in_workers: bool = False
    ingest_workers: int = 1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.shard_by not in SHARD_MODES:
            raise ValueError(
                f"shard_by must be one of {SHARD_MODES}, got {self.shard_by!r}"
            )
        if self.workers > 1 and self.backend == "serial":
            raise ValueError(
                f"workers={self.workers} with backend='serial' would run "
                "single-process anyway; use backend='process' or "
                "ExecutionPolicy.for_workers()"
            )
        if self.ingest_workers < 1:
            raise ValueError(
                f"ingest_workers must be >= 1, got {self.ingest_workers}"
            )
        if self.filter_in_workers and self.backend != "shard":
            raise ValueError(
                f"filter_in_workers requires backend='shard' (the other "
                f"backends run step 4 in the parent), got "
                f"backend={self.backend!r}"
            )

    @classmethod
    def for_workers(
        cls, workers: int, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> "ExecutionPolicy":
        """Policy for a worker count: process-parallel when > 1.

        ``workers=0`` means "all available cores".
        """
        if workers == 0:
            workers = os.cpu_count() or 1
        return cls(
            workers=workers,
            batch_size=batch_size,
            backend="process" if workers > 1 else "serial",
        )

    @classmethod
    def sharded(
        cls,
        workers: int,
        batch_size: int = DEFAULT_BATCH_SIZE,
        shard_by: str = "block",
        filter_in_workers: bool = False,
    ) -> "ExecutionPolicy":
        """Shard-backend policy for a worker count (0 = all cores)."""
        if workers == 0:
            workers = os.cpu_count() or 1
        return cls(
            workers=workers,
            batch_size=batch_size,
            backend="shard",
            shard_by=shard_by,
            filter_in_workers=filter_in_workers,
        )

    @property
    def parallel(self) -> bool:
        """True iff this policy fans work out across processes."""
        return self.backend in ("process", "shard") and self.workers > 1

    def shard_count(self) -> int:
        """Shards to partition pair generation into (shard backend).

        ``block`` mode oversubscribes (``SHARD_FACTOR`` shards per
        worker) so ``imap`` can balance uneven blocks dynamically.
        ``object`` mode gets exactly one shard per worker: its per-pair
        hash ownership is already uniform, and every object-mode shard
        walks the full block structure, so extra shards would only
        multiply that walk.
        """
        if self.shard_by == "object":
            return self.workers
        return self.workers * SHARD_FACTOR
