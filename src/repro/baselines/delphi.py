"""DELPHI-style baseline (Ananthakrishna, Chaudhuri & Ganti, [1]).

DELPHI deduplicates hierarchically organized warehouse tables top-down
and scores pairs with an *asymmetric containment* measure: how much of
one element's information is contained in the other.  The paper
contrasts its own symmetric measure against exactly this property
("'A is duplicate of B' does not imply that 'B is duplicate of A'"),
and notes DELPHI follows a single branch of the hierarchy.

This implementation keeps both distinctive properties:

* :class:`ContainmentSimilarity` — IDF-weighted containment of od_i in
  od_j (not symmetric; the classifier fires when *either* direction
  exceeds the threshold, DELPHI's duplicate rule);
* :func:`hierarchical_prune` — children evidence: candidate pairs whose
  parent elements were not detected as duplicates are pruned when the
  hierarchy is processed outermost-first.
"""

from __future__ import annotations

from typing import Sequence

from ..core.index import CorpusIndex
from ..framework import (
    DUPLICATES,
    NON_DUPLICATES,
    ObjectDescription,
)
from ..strings import within_normalized


class ContainmentSimilarity:
    """IDF-weighted containment measure.

    containment(od_i in od_j) = idf(tuples of od_i matched in od_j) /
    idf(all tuples of od_i).  Matching is per comparison key with the
    same thresholded edit distance DogmatiX uses, so the comparison
    isolates the *measure* difference (containment vs. shared-vs-
    contradictory), not the matching machinery.
    """

    def __init__(self, index: CorpusIndex) -> None:
        self.index = index
        self.theta_tuple = index.theta_tuple

    def containment(
        self, od_i: ObjectDescription, od_j: ObjectDescription
    ) -> float:
        """Weight fraction of od_i's information found in od_j."""
        total = 0.0
        contained = 0.0
        tuples_j: dict[str, list[str]] = {}
        for odt in od_j.tuples:
            tuples_j.setdefault(self.index.key_of(odt.name), []).append(odt.value)
        for odt in od_i.tuples:
            key = self.index.key_of(odt.name)
            weight = self.index.pair_idf(key, odt.value, key, odt.value)
            total += weight
            candidates = tuples_j.get(key, ())
            if any(
                within_normalized(odt.value, value, self.theta_tuple)
                for value in candidates
            ):
                contained += weight
        if total <= 0:
            return 0.0
        return contained / total

    def similarity(
        self, od_i: ObjectDescription, od_j: ObjectDescription
    ) -> float:
        """Symmetrized for threshold classifiers: max of both directions
        (DELPHI's rule — one element contained in the other suffices)."""
        return max(self.containment(od_i, od_j), self.containment(od_j, od_i))

    def __call__(self, od_i: ObjectDescription, od_j: ObjectDescription) -> float:
        return self.similarity(od_i, od_j)


class DelphiClassifier:
    """Two-class containment classifier (Definition-6 shape)."""

    def __init__(self, measure: ContainmentSimilarity, threshold: float) -> None:
        if not 0 <= threshold <= 1:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.measure = measure
        self.threshold = threshold

    def classify(self, od_i: ObjectDescription, od_j: ObjectDescription) -> str:
        return (
            DUPLICATES
            if self.measure.similarity(od_i, od_j) > self.threshold
            else NON_DUPLICATES
        )

    def score_and_classify(
        self, od_i: ObjectDescription, od_j: ObjectDescription
    ) -> tuple[float, str]:
        score = self.measure.similarity(od_i, od_j)
        return score, (DUPLICATES if score > self.threshold else NON_DUPLICATES)


def hierarchical_prune(
    child_pairs: Sequence[tuple[int, int]],
    parent_of: dict[int, int],
    parent_duplicates: set[tuple[int, int]],
) -> list[tuple[int, int]]:
    """DELPHI's top-down pruning: keep child pairs whose parents are
    duplicates (or identical).

    ``parent_of`` maps child object ids to parent object ids;
    ``parent_duplicates`` holds unordered parent duplicate pairs.
    """
    canonical = {(min(a, b), max(a, b)) for a, b in parent_duplicates}
    kept: list[tuple[int, int]] = []
    for left, right in child_pairs:
        parent_left = parent_of.get(left)
        parent_right = parent_of.get(right)
        if parent_left is None or parent_right is None:
            continue
        if parent_left == parent_right:
            kept.append((left, right))
        elif (
            min(parent_left, parent_right),
            max(parent_left, parent_right),
        ) in canonical:
            kept.append((left, right))
    return kept
