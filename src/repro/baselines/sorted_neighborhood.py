"""Sorted-neighborhood method (SNM) baseline.

Hernández & Stolfo's merge/purge approach ([7] in the paper) in its
domain-independent variant ([12]): candidates are sorted by a key
derived from their descriptions, a fixed-size window slides over the
sorted list, and only records within a window are compared.  The paper
points out why this is awkward for XML — "even defining the sorting key
by hand is not at all straightforward" — which this implementation
makes concrete: the key builder has to linearize the OD.

Plugs into the framework as a :class:`~repro.framework.pruning.PairSource`,
so any classifier (including DogmatiX's similarity) can run on top.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from ..framework import ObjectDescription
from ..strings import normalize


def default_key(od: ObjectDescription) -> str:
    """A generic sorting key: normalized values, shortest name first.

    Sorting the OD tuples by XPath groups the same kind of information
    together across objects; concatenating the first characters of each
    value approximates the domain-specific keys of merge/purge.
    """
    parts = sorted(
        (odt.name, normalize(odt.value)) for odt in od.tuples if odt.value
    )
    return "".join(value[:4] for _, value in parts)


class SortedNeighborhood:
    """Windowed pair generation over a sorted candidate list."""

    def __init__(
        self,
        window: int = 10,
        key: Callable[[ObjectDescription], str] = default_key,
        passes: int = 1,
    ) -> None:
        """``passes > 1`` runs the multi-pass variant: each pass rotates
        the key (dropping the leading component) to vary the sort order,
        a cheap stand-in for merge/purge's independent key choices."""
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if passes < 1:
            raise ValueError(f"passes must be >= 1, got {passes}")
        self.window = window
        self.key = key
        self.passes = passes

    def pairs(self, ods: Sequence[ObjectDescription]) -> Iterator[tuple[int, int]]:
        emitted: set[tuple[int, int]] = set()
        for pass_index in range(self.passes):
            ordered = sorted(
                ods, key=lambda od: self._pass_key(od, pass_index)
            )
            for start in range(len(ordered)):
                for offset in range(1, self.window):
                    other = start + offset
                    if other >= len(ordered):
                        break
                    pair = (
                        min(ordered[start].object_id, ordered[other].object_id),
                        max(ordered[start].object_id, ordered[other].object_id),
                    )
                    if pair not in emitted:
                        emitted.add(pair)
                        yield pair

    def _pass_key(self, od: ObjectDescription, pass_index: int) -> str:
        key = self.key(od)
        # Rotate: later passes sort by a shifted view of the key.
        if pass_index and key:
            shift = (pass_index * 4) % len(key)
            key = key[shift:] + key[:shift]
        return key
