"""Vector-space-model baseline (Carvalho & da Silva, [4] in the paper).

Objects are token vectors weighted by tf-idf; pairs are scored with
cosine similarity.  This is the "finding similar identities among
objects from multiple web sources" strategy the paper cites as the only
related XML work reporting recall/precision — the natural comparator
for DogmatiX's similarity measure.

The structural information of the OD is deliberately flattened (that is
the point of the baseline): all values are tokenized into one bag,
optionally prefixed by their comparison key to mimic the paper's
"field-aware" vector variant.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

from ..framework import ObjectDescription, TypeMapping
from ..strings import tokens


class VectorSpaceSimilarity:
    """tf-idf cosine over OD token bags.

    With ``field_aware=True`` tokens are tagged with their kind of
    information, so "1999" as a year and "1999" inside a title are
    different dimensions.
    """

    def __init__(
        self,
        ods: Sequence[ObjectDescription],
        mapping: TypeMapping | None = None,
        field_aware: bool = False,
    ) -> None:
        self.field_aware = field_aware
        self.mapping = mapping
        self._document_frequency: Counter[str] = Counter()
        self._vectors: dict[int, dict[str, float]] = {}
        self.total = len(ods)
        bags = {od.object_id: self._bag(od) for od in ods}
        for bag in bags.values():
            self._document_frequency.update(set(bag))
        for object_id, bag in bags.items():
            self._vectors[object_id] = self._weigh(bag)

    def _bag(self, od: ObjectDescription) -> Counter[str]:
        bag: Counter[str] = Counter()
        for odt in od.tuples:
            prefix = ""
            if self.field_aware:
                key = (
                    self.mapping.comparison_key(odt.name)
                    if self.mapping
                    else odt.name
                )
                prefix = f"{key}:"
            for token in tokens(odt.value):
                bag[prefix + token] += 1
        return bag

    def _weigh(self, bag: Counter[str]) -> dict[str, float]:
        vector: dict[str, float] = {}
        for token, term_frequency in bag.items():
            document_frequency = self._document_frequency[token]
            idf = math.log(max(self.total, 1) / document_frequency) if document_frequency else 0.0
            weight = term_frequency * idf
            if weight > 0:
                vector[token] = weight
        norm = math.sqrt(sum(weight * weight for weight in vector.values()))
        if norm > 0:
            for token in vector:
                vector[token] /= norm
        return vector

    def __call__(self, od_i: ObjectDescription, od_j: ObjectDescription) -> float:
        return self.similarity(od_i, od_j)

    def similarity(self, od_i: ObjectDescription, od_j: ObjectDescription) -> float:
        """Cosine of the two objects' tf-idf vectors, in [0, 1]."""
        vector_i = self._vectors.get(od_i.object_id)
        vector_j = self._vectors.get(od_j.object_id)
        if not vector_i or not vector_j:
            return 0.0
        if len(vector_i) > len(vector_j):
            vector_i, vector_j = vector_j, vector_i
        return sum(
            weight * vector_j[token]
            for token, weight in vector_i.items()
            if token in vector_j
        )
