"""Tree-edit-distance baseline (Guha et al., approximate XML joins, [6]).

The Zhang–Shasha ordered tree edit distance, plus the cheap lower
bounds the approximate-join literature uses to avoid full computations,
wrapped as a similarity over XML elements.

The paper's outlook ("we will explore how to adapt tree edit distance
... so that we can use it as similarity measure for duplicate
detection") motivates having this comparator in the benchmark suite.
"""

from __future__ import annotations

from ..framework import DUPLICATES, NON_DUPLICATES, ObjectDescription
from ..strings import ned_cached
from ..xmlkit import Element


class _FlatTree:
    """Post-order arrays for Zhang–Shasha."""

    __slots__ = ("labels", "values", "leftmost", "keyroots", "size")

    def __init__(self, root: Element) -> None:
        self.labels: list[str] = []
        self.values: list[str] = []
        self.leftmost: list[int] = []
        self._walk(root)
        self.size = len(self.labels)
        # Keyroots: nodes with a left sibling, plus the root.
        leftmost_seen: set[int] = set()
        keyroots: list[int] = []
        for index in range(self.size - 1, -1, -1):
            if self.leftmost[index] not in leftmost_seen:
                leftmost_seen.add(self.leftmost[index])
                keyroots.append(index)
        self.keyroots = sorted(keyroots)

    def _walk(self, node: Element) -> int:
        """Post-order traversal; returns the node's index."""
        first_leaf = None
        for child in node.children:
            child_index = self._walk(child)
            if first_leaf is None:
                first_leaf = self.leftmost[child_index]
        index = len(self.labels)
        self.labels.append(node.tag)
        self.values.append(node.text)
        self.leftmost.append(first_leaf if first_leaf is not None else index)
        return index


def _rename_cost(tree_a: _FlatTree, i: int, tree_b: _FlatTree, j: int) -> float:
    """Cost of mapping node i of A to node j of B.

    Tag mismatch costs 1 (different kind of element); equal tags cost
    the normalized edit distance of their text values — the content-
    aware cost model of approximate XML joins.
    """
    if tree_a.labels[i] != tree_b.labels[j]:
        return 1.0
    return ned_cached(tree_a.values[i], tree_b.values[j])


def tree_edit_distance(a: Element, b: Element) -> float:
    """Zhang–Shasha tree edit distance with unit insert/delete cost and
    content-aware rename cost."""
    tree_a, tree_b = _FlatTree(a), _FlatTree(b)
    n, m = tree_a.size, tree_b.size
    distance = [[0.0] * m for _ in range(n)]

    for keyroot_a in tree_a.keyroots:
        for keyroot_b in tree_b.keyroots:
            _tree_distance(tree_a, keyroot_a, tree_b, keyroot_b, distance)
    return distance[n - 1][m - 1]


def _tree_distance(
    tree_a: _FlatTree,
    i: int,
    tree_b: _FlatTree,
    j: int,
    distance: list[list[float]],
) -> None:
    li = tree_a.leftmost[i]
    lj = tree_b.leftmost[j]
    rows = i - li + 2
    cols = j - lj + 2
    forest = [[0.0] * cols for _ in range(rows)]
    for row in range(1, rows):
        forest[row][0] = forest[row - 1][0] + 1  # delete
    for col in range(1, cols):
        forest[0][col] = forest[0][col - 1] + 1  # insert
    for row in range(1, rows):
        node_a = li + row - 1
        for col in range(1, cols):
            node_b = lj + col - 1
            if tree_a.leftmost[node_a] == li and tree_b.leftmost[node_b] == lj:
                cost = _rename_cost(tree_a, node_a, tree_b, node_b)
                forest[row][col] = min(
                    forest[row - 1][col] + 1,
                    forest[row][col - 1] + 1,
                    forest[row - 1][col - 1] + cost,
                )
                distance[node_a][node_b] = forest[row][col]
            else:
                rows_a = tree_a.leftmost[node_a] - li
                cols_b = tree_b.leftmost[node_b] - lj
                forest[row][col] = min(
                    forest[row - 1][col] + 1,
                    forest[row][col - 1] + 1,
                    forest[rows_a][cols_b] + distance[node_a][node_b],
                )


def size_lower_bound(a: Element, b: Element) -> int:
    """|size(A) - size(B)| <= TED(A, B) — the classic join filter."""
    size_a = sum(1 for _ in a.iter())
    size_b = sum(1 for _ in b.iter())
    return abs(size_a - size_b)


def normalized_tree_distance(a: Element, b: Element) -> float:
    """TED normalized by the larger tree size, in [0, 1]-ish range."""
    size_a = sum(1 for _ in a.iter())
    size_b = sum(1 for _ in b.iter())
    largest = max(size_a, size_b)
    if largest == 0:
        return 0.0
    return min(1.0, tree_edit_distance(a, b) / largest)


class TreeEditSimilarity:
    """``1 - normalized TED`` as a pair similarity over ODs.

    Falls back to 0 for externally supplied ODs without elements.
    Applies the size lower bound before computing the quadratic DP.
    """

    def __init__(self, threshold_hint: float | None = None) -> None:
        #: With a hint, pairs whose size bound already exceeds the
        #: implied distance budget short-circuit to 0.
        self.threshold_hint = threshold_hint
        self.full_computations = 0
        self.bound_skips = 0

    def __call__(self, od_i: ObjectDescription, od_j: ObjectDescription) -> float:
        return self.similarity(od_i, od_j)

    def similarity(self, od_i: ObjectDescription, od_j: ObjectDescription) -> float:
        if od_i.element is None or od_j.element is None:
            return 0.0
        a, b = od_i.element, od_j.element
        if self.threshold_hint is not None:
            size_a = sum(1 for _ in a.iter())
            size_b = sum(1 for _ in b.iter())
            largest = max(size_a, size_b, 1)
            budget = (1.0 - self.threshold_hint) * largest
            if size_lower_bound(a, b) > budget:
                self.bound_skips += 1
                return 0.0
        self.full_computations += 1
        return 1.0 - normalized_tree_distance(a, b)


class TreeEditClassifier:
    """Thresholded TED classifier (Definition-6 shape)."""

    def __init__(self, threshold: float) -> None:
        if not 0 <= threshold <= 1:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold
        self.measure = TreeEditSimilarity(threshold_hint=threshold)

    def classify(self, od_i: ObjectDescription, od_j: ObjectDescription) -> str:
        return self.score_and_classify(od_i, od_j)[1]

    def score_and_classify(
        self, od_i: ObjectDescription, od_j: ObjectDescription
    ) -> tuple[float, str]:
        score = self.measure.similarity(od_i, od_j)
        return score, (DUPLICATES if score > self.threshold else NON_DUPLICATES)
