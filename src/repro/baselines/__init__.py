"""baselines: the related-work comparators (Section 7 of the paper).

* sorted-neighborhood (merge/purge, [7]/[12]) as a pair source;
* DELPHI-style asymmetric containment ([1]);
* vector-space tf-idf cosine ([4]);
* Zhang–Shasha tree edit distance ([6]).

All plug into the same framework pipeline as DogmatiX, so benchmark
comparisons isolate the measure/blocking choice.
"""

from .delphi import ContainmentSimilarity, DelphiClassifier, hierarchical_prune
from .sorted_neighborhood import SortedNeighborhood, default_key
from .tree_edit import (
    TreeEditClassifier,
    TreeEditSimilarity,
    normalized_tree_distance,
    size_lower_bound,
    tree_edit_distance,
)
from .vector_space import VectorSpaceSimilarity

__all__ = [
    "ContainmentSimilarity",
    "DelphiClassifier",
    "SortedNeighborhood",
    "TreeEditClassifier",
    "TreeEditSimilarity",
    "VectorSpaceSimilarity",
    "default_key",
    "hierarchical_prune",
    "normalized_tree_distance",
    "size_lower_bound",
    "tree_edit_distance",
]
